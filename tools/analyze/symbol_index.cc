#include "tools/analyze/symbol_index.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace airfair {
namespace analyze {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Token-boundary find, same contract as the lint engine's FindToken.
size_t FindToken(const std::string& code, const std::string& token, size_t from = 0) {
  size_t pos = code.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return pos;
    pos = code.find(token, pos + 1);
  }
  return std::string::npos;
}

bool HasToken(const std::string& code, const std::string& token) {
  return FindToken(code, token) != std::string::npos;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// First identifier token of a trimmed line ("" when the line starts with
// punctuation).
std::string FirstToken(const std::string& code) {
  size_t i = 0;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
  const size_t start = i;
  while (i < code.size() && IsIdentChar(code[i])) ++i;
  return code.substr(start, i - start);
}

// The thread-safety annotation macros (src/util/thread_annotations.h) that
// count as "a declared discipline" for a field or static. AF_ATOMIC is the
// documentation-only marker for intentionally lock-free atomics.
const char* kDisciplineAnnotations[] = {"AF_GUARDED_BY", "AF_PT_GUARDED_BY", "AF_ATOMIC"};

bool HasDisciplineAnnotation(const std::string& text) {
  for (const char* a : kDisciplineAnnotations) {
    if (HasToken(text, a)) return true;
  }
  return false;
}

// Last identifier of the AF_GUARDED_BY / AF_PT_GUARDED_BY argument, or "".
// The last identifier resolves member expressions ("pool_->chunk_mutex_" ->
// "chunk_mutex_"), matching how lock acquisitions name their lock.
std::string GuardArgument(const std::string& text) {
  static const char* kGuardedMacros[] = {"AF_GUARDED_BY", "AF_PT_GUARDED_BY"};
  for (const char* macro : kGuardedMacros) {
    const size_t pos = FindToken(text, macro);
    if (pos == std::string::npos) continue;
    const size_t open = text.find('(', pos);
    if (open == std::string::npos) continue;
    int balance = 0;
    size_t close = std::string::npos;
    for (size_t i = open; i < text.size(); ++i) {
      if (text[i] == '(') ++balance;
      if (text[i] == ')' && --balance == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    std::string name;
    for (size_t i = open + 1; i < close;) {
      if (IsIdentChar(text[i])) {
        const size_t start = i;
        while (i < close && IsIdentChar(text[i])) ++i;
        name = text.substr(start, i - start);
        continue;
      }
      ++i;
    }
    if (!name.empty()) return name;
  }
  return "";
}

bool IsRawMutexDecl(const std::string& code) {
  return HasToken(code, "std::mutex") || HasToken(code, "std::recursive_mutex") ||
         HasToken(code, "std::shared_mutex") || HasToken(code, "std::timed_mutex");
}

// The annotated wrapper (src/util/mutex.h). Token boundaries keep
// "MutexLock" from matching.
bool IsWrappedMutexDecl(const std::string& code) { return HasToken(code, "Mutex"); }

// Removes AF_* annotation macros (and a directly attached argument list)
// from a declaration so name extraction sees only the real declarator.
std::string StripAnnotationMacros(const std::string& code) {
  std::string out;
  size_t i = 0;
  while (i < code.size()) {
    if (code.compare(i, 3, "AF_") == 0 && (i == 0 || !IsIdentChar(code[i - 1]))) {
      size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      size_t k = j;
      while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k])) != 0) ++k;
      if (k < code.size() && code[k] == '(') {
        int balance = 0;
        while (k < code.size()) {
          if (code[k] == '(') ++balance;
          if (code[k] == ')' && --balance == 0) {
            ++k;
            break;
          }
          ++k;
        }
        j = k;
      }
      out += ' ';
      i = j;
      continue;
    }
    out += code[i];
    ++i;
  }
  return out;
}

// Last identifier before the declaration terminator (';', '=' or a brace
// initialiser), skipping macro-style identifiers that are directly followed
// by '(' and the contents of [[...]] attributes. Returns "" when none.
std::string DeclaredName(const std::string& decl) {
  const std::string code = StripAnnotationMacros(decl);
  std::string last;
  size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == ';' || c == '=' || c == '{') break;
    if (c == '[') {  // [[nodiscard]] / array extents — not names.
      while (i < code.size() && code[i] != ']') ++i;
      ++i;
      continue;
    }
    if (c == '<') {  // Template argument list: skip to the matching '>'.
      int angle = 0;
      while (i < code.size()) {
        if (code[i] == '<') ++angle;
        if (code[i] == '>' && --angle == 0) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (IsIdentChar(c)) {
      const size_t start = i;
      while (i < code.size() && IsIdentChar(code[i])) ++i;
      size_t k = i;
      while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k])) != 0) ++k;
      if (k < code.size() && code[k] == '(') {
        // A call / function declarator, not a variable name.
        i = k;
        continue;
      }
      last = code.substr(start, i - start);
      continue;
    }
    ++i;
  }
  return last;
}

// Name of a class/struct/namespace/enum head: the last plain identifier
// between the keyword and the body / base-clause, skipping attribute macros
// like AF_CAPABILITY("mutex") and the `final` specifier.
std::string ScopeName(const std::string& code, size_t after_keyword) {
  std::string last;
  size_t i = after_keyword;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '{' || c == ';') break;
    if (c == ':' && (i + 1 >= code.size() || code[i + 1] != ':') &&
        (i == 0 || code[i - 1] != ':')) {
      break;  // Base clause or enum underlying type.
    }
    if (c == ':') {  // "::" qualifier — the qualified name is not the decl name.
      i += 2;
      last.clear();
      continue;
    }
    if (c == '[') {
      while (i < code.size() && code[i] != ']') ++i;
      ++i;
      continue;
    }
    if (c == '(') {  // Attribute-macro arguments.
      int balance = 0;
      while (i < code.size()) {
        if (code[i] == '(') ++balance;
        if (code[i] == ')' && --balance == 0) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (IsIdentChar(c)) {
      const size_t start = i;
      while (i < code.size() && IsIdentChar(code[i])) ++i;
      size_t k = i;
      while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k])) != 0) ++k;
      if (k < code.size() && code[k] == '(') {
        i = k;  // Macro with arguments (attribute) — not the name.
        continue;
      }
      const std::string token = code.substr(start, i - start);
      if (token != "final") last = token;
      continue;
    }
    ++i;
  }
  return last;
}

enum class ScopeKind { kNamespace, kClass, kEnum };

struct Scope {
  ScopeKind kind;
  std::string name;
  int body_depth = 0;  // Brace depth inside the scope's body.
};

// A class/struct/namespace/enum head seen but whose '{' has not been
// consumed yet (heads and bodies can sit on different lines).
struct PendingScope {
  ScopeKind kind;
  std::string name;
  int line = 0;    // 1-based line of the head.
  size_t pos = 0;  // Column of the keyword on that line.
};

struct HeldLock {
  std::string name;
  int decl_depth = 0;  // Released when brace depth drops below this.
};

class FileIndexer {
 public:
  FileIndexer(const IndexSourceFile& file, SymbolIndex* out) : file_(file), out_(out) {}

  void Run() {
    const std::vector<std::string>& code = *file_.code;
    for (size_t i = 0; i < code.size(); ++i) {
      const int line_no = static_cast<int>(i) + 1;
      CollectScopeHeads(code[i], line_no);
      // Declarations are classified against the scope state at the start of
      // the line; one-liner bodies ("struct X { int a; };") are not
      // descended into — the code base declares one member per line.
      MaybeRecordDeclaration(code[i], i, line_no);
      MaybeRecordAcquisition(code[i], line_no);
      WalkBraces(code[i], line_no);
    }
    // Fields attach to their ClassSymbol when the class scope closes; a
    // class still open at EOF (truncated file) is flushed here.
    while (!scopes_.empty()) {
      PopScope();
    }
  }

 private:
  // --- scope tracking -----------------------------------------------------

  void CollectScopeHeads(const std::string& code, int line_no) {
    const size_t template_pos = FindToken(code, "template");
    static const struct {
      const char* keyword;
      ScopeKind kind;
    } kKeywords[] = {{"namespace", ScopeKind::kNamespace},
                     {"class", ScopeKind::kClass},
                     {"struct", ScopeKind::kClass},
                     {"enum", ScopeKind::kEnum}};
    std::vector<PendingScope> found;
    for (const auto& kw : kKeywords) {
      const size_t len = std::string(kw.keyword).size();
      for (size_t pos = FindToken(code, kw.keyword); pos != std::string::npos;
           pos = FindToken(code, kw.keyword, pos + len)) {
        if (template_pos != std::string::npos && pos > template_pos) continue;
        // "enum class X" / "enum struct X": the class/struct token belongs
        // to the enum head found separately.
        if (kw.kind == ScopeKind::kClass) {
          size_t prev = pos;
          while (prev > 0 && std::isspace(static_cast<unsigned char>(code[prev - 1])) != 0) --prev;
          if (prev >= 4 && code.compare(prev - 4, 4, "enum") == 0 &&
              (prev == 4 || !IsIdentChar(code[prev - 5]))) {
            continue;
          }
        }
        if (HasToken(code.substr(0, pos), "friend")) continue;
        size_t name_from = pos + len;
        if (kw.kind == ScopeKind::kEnum) {
          // Skip the optional class/struct of a scoped enum.
          size_t k = name_from;
          while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k])) != 0) ++k;
          if (code.compare(k, 5, "class") == 0 || code.compare(k, 6, "struct") == 0) {
            name_from = k + (code.compare(k, 5, "class") == 0 ? 5 : 6);
          }
        }
        found.push_back(PendingScope{kw.kind, ScopeName(code, name_from), line_no, pos});
      }
    }
    // Keep heads in source order ('namespace a { namespace b {').
    for (size_t a = 0; a < found.size(); ++a) {
      for (size_t b = a + 1; b < found.size(); ++b) {
        if (found[b].pos < found[a].pos) std::swap(found[a], found[b]);
      }
    }
    for (PendingScope& p : found) pending_.push_back(std::move(p));
  }

  void WalkBraces(const std::string& code, int line_no) {
    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '{') {
        ++depth_;
        if (!pending_.empty() &&
            (pending_.front().line < line_no ||
             (pending_.front().line == line_no && pending_.front().pos < i))) {
          PendingScope head = std::move(pending_.front());
          pending_.pop_front();
          OpenScope(head);
        }
      } else if (c == '}') {
        while (!scopes_.empty() && scopes_.back().body_depth == depth_) {
          PopScope();
        }
        if (depth_ > 0) --depth_;
        while (!held_.empty() && held_.back().decl_depth > depth_) {
          held_.pop_back();
        }
      } else if (c == ';') {
        // "class Foo;" — a forward declaration, not a scope head.
        if (!pending_.empty() && pending_.front().line == line_no && pending_.front().pos < i) {
          pending_.pop_front();
        }
      }
    }
  }

  void OpenScope(const PendingScope& head) {
    scopes_.push_back(Scope{head.kind, head.name, depth_});
    if (head.kind != ScopeKind::kNamespace && !head.name.empty()) {
      open_classes_.push_back(ClassSymbol{head.name, file_.path, head.line,
                                          head.kind == ScopeKind::kEnum, {}});
      class_scope_index_.push_back(scopes_.size() - 1);
    }
  }

  void PopScope() {
    const Scope& top = scopes_.back();
    if (top.kind != ScopeKind::kNamespace && !top.name.empty() && !open_classes_.empty() &&
        class_scope_index_.back() == scopes_.size() - 1) {
      ClassSymbol done = std::move(open_classes_.back());
      open_classes_.pop_back();
      class_scope_index_.pop_back();
      out_->files_by_type[done.name].push_back(file_.path);
      out_->classes.push_back(std::move(done));
    }
    scopes_.pop_back();
  }

  // Innermost non-namespace scope the current line sits directly in, or
  // nullptr. "Directly" = the line's depth equals the scope's body depth.
  const Scope* DirectScope() const {
    if (scopes_.empty()) return nullptr;
    const Scope& top = scopes_.back();
    return top.body_depth == depth_ ? &top : nullptr;
  }

  // --- declarations -------------------------------------------------------

  bool AnnotationNear(const std::string& code_line, size_t line_idx) const {
    if (HasDisciplineAnnotation(code_line)) return true;
    // A marker on the raw line above also counts, for positions where the
    // macro cannot syntactically attach.
    return line_idx > 0 && HasDisciplineAnnotation((*file_.raw)[line_idx - 1]);
  }

  std::string GuardNear(const std::string& code_line, size_t line_idx) const {
    const std::string guard = GuardArgument(code_line);
    if (!guard.empty()) return guard;
    return line_idx > 0 ? GuardArgument((*file_.raw)[line_idx - 1]) : "";
  }

  void MaybeRecordDeclaration(const std::string& raw_code, size_t line_idx, int line_no) {
    const std::string code = Trim(raw_code);
    if (code.empty() || code[0] == '#') return;
    const std::string first = FirstToken(code);
    if (first == "public" || first == "private" || first == "protected" || first == "using" ||
        first == "typedef" || first == "friend" || first == "template" || first == "return" ||
        first == "if" || first == "for" || first == "while" || first == "switch" ||
        first == "case" || first == "else" || first == "do" || first == "namespace" ||
        first == "class" || first == "struct" || first == "enum" || first == "extern" ||
        first == "static_assert" || first == "operator" || first == "goto") {
      return;
    }
    // Variable declarations only: a terminator on this line, with no '('
    // before it (that would be a function declarator or a call). Annotation
    // macros are stripped first so AF_GUARDED_BY(mu_)'s parentheses do not
    // make a field look like a function.
    const std::string bare = StripAnnotationMacros(code);
    const size_t terminator = std::min(bare.find(';'), bare.find('='));
    if (terminator == std::string::npos) return;
    const size_t brace = bare.find('{');
    const size_t paren = bare.find('(');
    const size_t decl_end = std::min(terminator, brace);
    if (paren != std::string::npos && paren < decl_end) return;

    const bool is_static = HasToken(code, "static");
    const bool is_thread_local = HasToken(code, "thread_local");
    const bool is_const = HasToken(code, "const") || HasToken(code, "constexpr");
    const bool is_atomic = HasToken(code, "std::atomic");
    const bool is_raw_mutex = IsRawMutexDecl(code);
    const bool is_wrapped_mutex = IsWrappedMutexDecl(code);
    const bool annotated = AnnotationNear(code, line_idx);

    const Scope* direct = DirectScope();
    if (direct != nullptr && direct->kind == ScopeKind::kEnum) return;
    if (direct != nullptr && direct->kind == ScopeKind::kClass) {
      if (open_classes_.empty()) return;
      const std::string name = DeclaredName(code);
      if (name.empty()) return;
      FieldSymbol field;
      field.class_name = open_classes_.back().name;
      field.name = name;
      field.decl = code;
      field.file = file_.path;
      field.line = line_no;
      field.is_static = is_static;
      field.is_thread_local = is_thread_local;
      field.is_const = is_const;
      field.is_atomic = is_atomic;
      field.is_raw_mutex = is_raw_mutex;
      field.is_wrapped_mutex = is_wrapped_mutex;
      field.has_annotation = annotated;
      field.guard = GuardNear(code, line_idx);
      open_classes_.back().fields.push_back(std::move(field));
      return;
    }

    // Outside class-field position: record mutable statics and
    // concurrency-relevant namespace-scope globals (anonymous-namespace
    // globals carry no `static` keyword).
    const int namespace_depth =
        scopes_.empty() ? 0 : scopes_.back().body_depth;
    const bool at_namespace_scope =
        (scopes_.empty() || scopes_.back().kind == ScopeKind::kNamespace) &&
        depth_ == namespace_depth;
    const bool interesting_type = is_atomic || is_raw_mutex || is_wrapped_mutex;
    if (!is_static && !(at_namespace_scope && interesting_type)) return;
    const std::string name = DeclaredName(code);
    if (name.empty()) return;
    StaticSymbol sym;
    sym.name = name;
    sym.decl = code;
    sym.file = file_.path;
    sym.line = line_no;
    sym.is_function_local = !at_namespace_scope;
    sym.is_thread_local = is_thread_local;
    sym.is_const = is_const;
    sym.is_atomic = is_atomic;
    sym.is_raw_mutex = is_raw_mutex;
    sym.is_wrapped_mutex = is_wrapped_mutex;
    sym.has_annotation = annotated;
    sym.guard = GuardNear(code, line_idx);
    out_->statics.push_back(std::move(sym));
  }

  // --- lock acquisitions --------------------------------------------------

  void MaybeRecordAcquisition(const std::string& code, int line_no) {
    static const char* kGuards[] = {"MutexLock", "std::lock_guard", "std::unique_lock",
                                    "std::scoped_lock"};
    for (const char* guard : kGuards) {
      size_t pos = FindToken(code, guard);
      if (pos == std::string::npos) continue;
      // Depth at the token's column: braces earlier on this line count
      // ("{ MutexLock l(&m); }" acquires inside that block, and WalkBraces
      // — which runs after this — must release it at the closing brace).
      int decl_depth = depth_;
      for (size_t b = 0; b < pos; ++b) {
        if (code[b] == '{') ++decl_depth;
        if (code[b] == '}' && decl_depth > 0) --decl_depth;
      }
      size_t i = pos + std::string(guard).size();
      if (i < code.size() && code[i] == '<') {  // Template argument list.
        int angle = 0;
        while (i < code.size()) {
          if (code[i] == '<') ++angle;
          if (code[i] == '>' && --angle == 0) {
            ++i;
            break;
          }
          ++i;
        }
      }
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
      // An RAII guard *variable*: identifier then '(' — "MutexLock l(&mu);".
      // "MutexLock(" (a constructor declaration) and "MutexLock l;" do not
      // acquire anything here.
      const size_t var_start = i;
      while (i < code.size() && IsIdentChar(code[i])) ++i;
      if (i == var_start) return;
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
      if (i >= code.size() || code[i] != '(') return;
      int balance = 0;
      const size_t open = i;
      size_t close = std::string::npos;
      while (i < code.size()) {
        if (code[i] == '(') ++balance;
        if (code[i] == ')' && --balance == 0) {
          close = i;
          break;
        }
        ++i;
      }
      if (close == std::string::npos) return;
      std::string expr = code.substr(open + 1, close - open - 1);
      // Multi-lock std::scoped_lock: the first lock is representative (the
      // call itself orders its arguments deadlock-free).
      const size_t comma = expr.find(',');
      if (comma != std::string::npos) expr = expr.substr(0, comma);
      std::string lock_name;
      for (size_t k = 0; k < expr.size();) {
        if (IsIdentChar(expr[k])) {
          const size_t start = k;
          while (k < expr.size() && IsIdentChar(expr[k])) ++k;
          lock_name = expr.substr(start, k - start);
          continue;
        }
        ++k;
      }
      if (lock_name.empty()) return;
      LockAcquisition acq;
      acq.lock_name = lock_name;
      for (const HeldLock& h : held_) acq.held.push_back(h.name);
      acq.file = file_.path;
      acq.line = line_no;
      out_->acquisitions.push_back(std::move(acq));
      held_.push_back(HeldLock{lock_name, decl_depth});
      return;
    }
  }

  const IndexSourceFile& file_;
  SymbolIndex* out_;
  int depth_ = 0;
  std::vector<Scope> scopes_;
  std::deque<PendingScope> pending_;
  std::vector<ClassSymbol> open_classes_;
  std::vector<size_t> class_scope_index_;
  std::vector<HeldLock> held_;
};

}  // namespace

SymbolIndex BuildSymbolIndex(const std::vector<IndexSourceFile>& files) {
  SymbolIndex index;
  for (const IndexSourceFile& file : files) {
    if (file.code == nullptr || file.raw == nullptr) continue;
    FileIndexer(file, &index).Run();
  }
  return index;
}

}  // namespace analyze
}  // namespace airfair

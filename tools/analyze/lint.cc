#include "tools/analyze/lint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/cfg.h"
#include "tools/analyze/dataflow.h"
#include "tools/analyze/symbol_index.h"

namespace airfair {
namespace analyze {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexing: comment/string stripping and include extraction.
// ---------------------------------------------------------------------------

struct StrippedLine {
  std::string code;     // Comments removed, literal contents blanked.
  std::string comment;  // Concatenated comment text on this line.
};

StrippedLine StripLine(const std::string& line, bool* in_block_comment) {
  StrippedLine out;
  size_t i = 0;
  const size_t n = line.size();
  while (i < n) {
    if (*in_block_comment) {
      const size_t end = line.find("*/", i);
      if (end == std::string::npos) {
        out.comment.append(line, i, n - i);
        i = n;
      } else {
        out.comment.append(line, i, end - i);
        *in_block_comment = false;
        i = end + 2;
        out.code += ' ';
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < n && line[i + 1] == '/') {
      out.comment.append(line, i + 2, n - (i + 2));
      break;
    }
    if (c == '/' && i + 1 < n && line[i + 1] == '*') {
      *in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == 'R' && i + 1 < n && line[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(line[i - 1])) && line[i - 1] != '_'))) {
      // Raw string literal: R"delim( ... )delim". Single-line only; the
      // code base does not use multi-line raw strings.
      const size_t paren = line.find('(', i + 2);
      if (paren != std::string::npos) {
        const std::string delim = line.substr(i + 2, paren - (i + 2));
        const std::string closer = ")" + delim + "\"";
        const size_t end = line.find(closer, paren + 1);
        out.code += "\"\"";
        i = end == std::string::npos ? n : end + closer.size();
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      out.code += c;
      ++i;
      while (i < n) {
        if (line[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (line[i] == c) {
          out.code += c;
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out.code += c;
    ++i;
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds `token` in `code` with identifier boundaries on both sides.
// Returns the position or npos.
size_t FindToken(const std::string& code, const std::string& token, size_t from = 0) {
  size_t pos = code.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    // Tokens that already start with "std::" should not also match
    // "xstd::..."; the left boundary check above covers that because ':'
    // is not an identifier char but 's' of "std" is checked instead.
    if (left_ok && right_ok) {
      return pos;
    }
    pos = code.find(token, pos + 1);
  }
  return std::string::npos;
}

bool HasToken(const std::string& code, const std::string& token) {
  return FindToken(code, token) != std::string::npos;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// Parses `#include <x>` / `#include "x"`; returns the target or "".
std::string ParseInclude(const std::string& code) {
  size_t i = 0;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
  if (i >= code.size() || code[i] != '#') return "";
  ++i;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
  if (code.compare(i, 7, "include") != 0) return "";
  i += 7;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
  if (i >= code.size()) return "";
  char close = 0;
  if (code[i] == '<') close = '>';
  if (code[i] == '"') close = '"';
  if (close == 0) return "";
  const size_t end = code.find(close, i + 1);
  if (end == std::string::npos) return "";
  return code.substr(i + 1, end - i - 1);
}

// ---------------------------------------------------------------------------
// Per-file model.
// ---------------------------------------------------------------------------

struct FileData {
  std::string path;  // Repo-relative, forward slashes.
  bool is_header = false;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
  std::vector<std::string> includes;           // In order of appearance.
  std::vector<int> include_lines;              // 1-based, parallel.
  std::vector<std::string> include_targets;    // Per line; "" when not an include.
  std::set<std::string> include_set;
  // rule -> raw lines (1-based) carrying an allow() for it.
  std::map<std::string, std::set<int>> allows;
};

void ParseAllows(const std::string& comment, int line_no, FileData* file) {
  size_t pos = comment.find("airfair-lint:");
  while (pos != std::string::npos) {
    const size_t open = comment.find("allow(", pos);
    if (open == std::string::npos) break;
    const size_t close = comment.find(')', open + 6);
    if (close == std::string::npos) break;
    std::string list = comment.substr(open + 6, close - open - 6);
    size_t start = 0;
    while (start <= list.size()) {
      const size_t comma = list.find(',', start);
      const std::string id =
          Trim(comma == std::string::npos ? list.substr(start) : list.substr(start, comma - start));
      if (!id.empty()) {
        file->allows[id].insert(line_no);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    pos = comment.find("airfair-lint:", close);
  }
}

FileData LoadFile(const fs::path& abs, std::string rel) {
  FileData file;
  file.path = std::move(rel);
  file.is_header = abs.extension() == ".h";
  std::ifstream in(abs);
  std::string line;
  bool in_block = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    StrippedLine stripped = StripLine(line, &in_block);
    // Quoted include targets are string literals, which the stripper
    // blanks; parse the raw line instead, gated on the stripped line being
    // a real directive so commented-out includes do not count.
    const std::string stripped_trim = Trim(stripped.code);
    const std::string inc =
        !stripped_trim.empty() && stripped_trim[0] == '#' ? ParseInclude(line) : std::string();
    file.include_targets.push_back(inc);
    if (!inc.empty()) {
      file.includes.push_back(inc);
      file.include_lines.push_back(line_no);
      file.include_set.insert(inc);
    }
    ParseAllows(stripped.comment, line_no, &file);
    file.raw.push_back(line);
    file.code.push_back(std::move(stripped.code));
    file.comment.push_back(std::move(stripped.comment));
  }
  return file;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool InHotDir(const std::string& path) {
  return StartsWith(path, "src/sim/") || StartsWith(path, "src/mac/") ||
         StartsWith(path, "src/core/") || StartsWith(path, "src/aqm/") ||
         StartsWith(path, "src/net/");
}

bool InSrc(const std::string& path) { return StartsWith(path, "src/"); }

// The dirs whose posted callbacks the callback-lifetime rule polices: the
// hot event-loop dirs plus src/obs (trace exporters post flush events).
bool InCallbackDirs(const std::string& path) {
  return InHotDir(path) || StartsWith(path, "src/obs/");
}

bool IsIdentToken(const std::string& t) {
  return !t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_');
}

// CfgStmt text back into its tokens (the CFG builder joins with single
// spaces, so this is lossless).
std::vector<std::string> SplitTokens(const std::string& text) {
  std::vector<std::string> toks;
  std::istringstream in(text);
  std::string t;
  while (in >> t) toks.push_back(std::move(t));
  return toks;
}

bool Contains(const std::vector<std::string>& toks, const std::string& t) {
  return std::find(toks.begin(), toks.end(), t) != toks.end();
}

// Runs fn(0..n-1) across a small thread pool. The lint tree is a few
// hundred files; 8 threads is plenty and keeps the pool polite on shared
// runners. (tools/ sits outside the domain-crossing rule's scope — the
// simulator's single-threaded-domain discipline does not bind the linter.)
template <typename Fn>
void ParallelFor(size_t n, Fn&& fn) {
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t nthreads =
      std::min(std::min(static_cast<size_t>(hw == 0 ? 4 : hw), static_cast<size_t>(8)), n);
  if (nthreads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (size_t t = 0; t < nthreads; ++t) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  for (std::thread& th : pool) th.join();
}

const char* kFileScopeRules[] = {"header-guard", "include-self-first", "core-needs-test",
                                 "audit-registration"};

bool IsFileScopeRule(const std::string& rule) {
  for (const char* r : kFileScopeRules) {
    if (rule == r) return true;
  }
  return false;
}

bool Suppressed(const FileData& file, const std::string& rule, int line) {
  const auto it = file.allows.find(rule);
  if (it == file.allows.end()) return false;
  if (IsFileScopeRule(rule)) return true;  // Anywhere in the file.
  // Same line or the line directly above.
  return it->second.count(line) > 0 || it->second.count(line - 1) > 0;
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(const LintOptions& options) : options_(options) {}

  LintResult Run() {
    CollectFiles();
    BuildIndex();
    CollectNodiscardNames();
    // Per-file stage, parallel across a small pool: each file's lexical
    // rules plus the flow-sensitive CFG rules touch only that file's data
    // (plus the read-only index built above); findings merge under a mutex
    // and the final sort makes the output order deterministic regardless of
    // scheduling. Cross-file rules stay serial below.
    ParallelFor(files_.size(), [&](size_t i) {
      const FileData& file = files_[i];
      LintHotConstructs(file);
      LintTraceMacroDiscipline(file);
      LintAfCheck(file);
      LintIncludes(file);
      LintIwyu(file);
      LintHeaderGuard(file);
      LintUsingNamespace(file);
      LintFlowRules(file);
    });
    LintCoreNeedsTest();
    LintAuditRegistration();
    LintGuardedFieldDiscipline();
    LintDomainCrossing();
    LintShardGatewayDiscipline();
    LintLockOrder();
    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const LintFinding& a, const LintFinding& b) {
                return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
              });
    result_.files_scanned = static_cast<int>(files_.size());
    return std::move(result_);
  }

 private:
  void Report(const FileData& file, const std::string& rule, int line, std::string message) {
    if (Suppressed(file, rule, line)) return;
    std::lock_guard<std::mutex> lock(findings_mutex_);
    result_.findings.push_back(LintFinding{rule, file.path, line, std::move(message)});
  }

  static bool SkipDir(const std::string& name) {
    return name == "build" || name == "CMakeFiles" || name == ".git" || name == "third_party" ||
           StartsWith(name, "build-") || StartsWith(name, "cmake-build");
  }

  void CollectFiles() {
    const fs::path root = fs::path(options_.repo_root);
    std::vector<fs::path> paths;
    for (const std::string& entry : options_.roots) {
      const fs::path p = root / entry;
      if (fs::is_regular_file(p)) {
        paths.push_back(p);
        continue;
      }
      if (!fs::is_directory(p)) continue;
      fs::recursive_directory_iterator it(p), end;
      while (it != end) {
        if (it->is_directory() && SkipDir(it->path().filename().string())) {
          it.disable_recursion_pending();
          ++it;
          continue;
        }
        if (it->is_regular_file()) {
          const std::string ext = it->path().extension().string();
          if (ext == ".h" || ext == ".cc") paths.push_back(it->path());
        }
        ++it;
      }
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
    files_.resize(paths.size());
    // Loading (read + strip + allow-parse) dominates small-tree runs;
    // parallelise it by index so files_ keeps the sorted path order.
    ParallelFor(paths.size(), [&](size_t i) {
      files_[i] = LoadFile(paths[i], fs::relative(paths[i], root).generic_string());
    });
  }

  // Effective includes of a .cc file: its own plus its paired header's (the
  // header already pulls those in for every translation unit including it).
  std::set<std::string> EffectiveIncludes(const FileData& file) const {
    std::set<std::string> includes = file.include_set;
    const std::string paired = PairedHeader(file.path);
    if (!paired.empty()) {
      if (const FileData* header = Find(paired); header != nullptr) {
        includes.insert(header->include_set.begin(), header->include_set.end());
      }
    }
    return includes;
  }

  static std::string PairedHeader(const std::string& path) {
    if (path.size() < 3 || path.compare(path.size() - 3, 3, ".cc") != 0) return "";
    return path.substr(0, path.size() - 3) + ".h";
  }

  const FileData* Find(const std::string& path) const {
    for (const FileData& f : files_) {
      if (f.path == path) return &f;
    }
    return nullptr;
  }

  // Pass 1 of the two-pass analysis: the tree-wide symbol index the
  // concurrency-discipline rules below query. Built over every collected
  // file so cross-file facts (where a class lives, which TUs spawn
  // threads) are visible to rules running on any other file.
  void BuildIndex() {
    std::vector<IndexSourceFile> inputs;
    inputs.reserve(files_.size());
    for (const FileData& f : files_) {
      inputs.push_back(IndexSourceFile{f.path, &f.code, &f.raw});
    }
    index_ = BuildSymbolIndex(inputs);
  }

  void ReportAt(const std::string& path, const std::string& rule, int line, std::string message) {
    if (const FileData* file = Find(path); file != nullptr) {
      Report(*file, rule, line, std::move(message));
    }
  }

  // One identifier per line; '#' starts a comment. Used for the lock
  // hierarchy and the domain gateway whitelist.
  static std::vector<std::string> ReadListFile(const fs::path& path) {
    std::vector<std::string> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line = line.substr(0, hash);
      line = Trim(line);
      if (line.empty()) continue;
      size_t e = 0;
      while (e < line.size() && std::isspace(static_cast<unsigned char>(line[e])) == 0) ++e;
      out.push_back(line.substr(0, e));
    }
    return out;
  }

  // --- guarded-field-discipline ---
  // Every concurrency-relevant declaration in src/ must say what protects
  // it: raw std::mutex members become the annotated Mutex wrapper (a plain
  // std::mutex is invisible to clang -Wthread-safety), atomics and mutable
  // statics carry AF_GUARDED_BY / AF_ATOMIC or an allow with a reason.
  // thread_local (per-thread ownership), const/constexpr and the Mutex
  // wrapper itself (a capability, not guarded state) are exempt.
  void LintGuardedFieldDiscipline() {
    const auto check = [&](const std::string& path, int line, const std::string& what,
                           bool is_thread_local, bool is_const, bool is_atomic, bool is_raw_mutex,
                           bool is_wrapped_mutex, bool is_mutable_static, bool has_annotation) {
      if (!InSrc(path)) return;
      if (is_thread_local || is_const) return;
      if (is_raw_mutex) {
        ReportAt(path, "guarded-field-discipline", line,
                 "raw std::mutex " + what +
                     "; declare airfair::Mutex (src/util/mutex.h) so clang -Wthread-safety "
                     "can track what it guards");
        return;
      }
      if (is_wrapped_mutex) return;
      if (is_atomic) {
        if (!has_annotation) {
          ReportAt(path, "guarded-field-discipline", line,
                   "std::atomic " + what +
                       " without a declared discipline; add AF_GUARDED_BY(lock) or mark it "
                       "intentionally lock-free with AF_ATOMIC "
                       "(src/util/thread_annotations.h)");
        }
        return;
      }
      if (is_mutable_static && !has_annotation) {
        ReportAt(path, "guarded-field-discipline", line,
                 "mutable static " + what +
                     " without a declared discipline; guard it (AF_GUARDED_BY), make it "
                     "atomic (AF_ATOMIC), use thread_local, or suppress with a reason");
      }
    };
    for (const ClassSymbol& cls : index_.classes) {
      for (const FieldSymbol& f : cls.fields) {
        check(f.file, f.line, "member `" + f.name + "` of " + cls.name, f.is_thread_local,
              f.is_const, f.is_atomic, f.is_raw_mutex, f.is_wrapped_mutex, f.is_static,
              f.has_annotation);
      }
    }
    for (const StaticSymbol& s : index_.statics) {
      check(s.file, s.line,
            std::string(s.is_function_local ? "function-local static `" : "global `") + s.name +
                "`",
            s.is_thread_local, s.is_const, s.is_atomic, s.is_raw_mutex, s.is_wrapped_mutex,
            /*is_mutable_static=*/true, s.has_annotation);
    }
  }

  // --- domain-crossing ---
  // Types declared in the hot dirs are event-loop-domain: owned by exactly
  // one simulation loop, never safe to touch from another thread. The rule
  // polices the boundary in both directions: thread-entry TUs (anything in
  // src/ that spawns std::thread, plus the parallel runner) may not name a
  // domain type except via the gateway whitelist, and domain TUs may not
  // spawn threads at all.
  void LintDomainCrossing() {
    std::map<std::string, std::string> domain_types;  // name -> declaring file
    for (const auto& [name, declaring_files] : index_.files_by_type) {
      for (const std::string& f : declaring_files) {
        if (InHotDir(f)) {
          domain_types.emplace(name, f);
          break;
        }
      }
    }
    std::set<std::string> gateways;
    {
      const fs::path p = fs::path(options_.repo_root) / options_.gateway_file;
      if (fs::exists(p)) {
        const std::vector<std::string> listed = ReadListFile(p);
        gateways.insert(listed.begin(), listed.end());
      }
    }
    // TUs that *implement* a whitelisted gateway are the sanctioned boundary
    // itself: the sharded event loop both spawns the domain worker threads
    // and names domain types, and that is its entire job. A TU qualifies
    // when it (or its paired header) declares a gateway type.
    std::set<std::string> gateway_tus;
    for (const std::string& gw : gateways) {
      const auto it = index_.files_by_type.find(gw);
      if (it == index_.files_by_type.end()) continue;
      for (const std::string& f : it->second) {
        gateway_tus.insert(f);
        if (f.size() > 2 && f.compare(f.size() - 2, 2, ".h") == 0) {
          gateway_tus.insert(f.substr(0, f.size() - 2) + ".cc");
        }
      }
    }
    for (const FileData& file : files_) {
      if (!InSrc(file.path)) continue;
      if (gateway_tus.count(file.path) > 0) continue;
      const bool is_domain = InHotDir(file.path);
      bool thread_entry = file.path.find("parallel_runner") != std::string::npos;
      for (size_t i = 0; i < file.code.size(); ++i) {
        // The std::thread *type* marks a spawner; nested-name uses like
        // std::thread::id or std::thread::hardware_concurrency() do not
        // start threads and are fine anywhere.
        bool spawns = false;
        for (size_t pos = FindToken(file.code[i], "std::thread"); pos != std::string::npos;
             pos = FindToken(file.code[i], "std::thread", pos + 11)) {
          if (pos + 11 >= file.code[i].size() || file.code[i][pos + 11] != ':') {
            spawns = true;
            break;
          }
        }
        if (!spawns) continue;
        const int line = static_cast<int>(i) + 1;
        if (is_domain) {
          Report(file, "domain-crossing", line,
                 "event-loop-domain TU spawns std::thread; domain code is single-threaded "
                 "by design — thread management belongs to the scenario layer");
        } else {
          thread_entry = true;
        }
      }
      if (is_domain || !thread_entry) continue;
      for (size_t i = 0; i < file.code.size(); ++i) {
        const std::string& code = file.code[i];
        for (size_t k = 0; k < code.size();) {
          if (!IsIdentChar(code[k])) {
            ++k;
            continue;
          }
          const size_t start = k;
          while (k < code.size() && IsIdentChar(code[k])) ++k;
          if (start > 0 && IsIdentChar(code[start - 1])) continue;
          const std::string ident = code.substr(start, k - start);
          const auto it = domain_types.find(ident);
          if (it == domain_types.end() || gateways.count(ident) > 0) continue;
          Report(file, "domain-crossing", static_cast<int>(i) + 1,
                 "thread-entry TU names event-loop-domain type `" + ident + "` (declared in " +
                     it->second +
                     "); cross the boundary only through a gateway listed in "
                     "tools/analyze/domain_gateways.txt");
          break;  // One finding per line keeps the output readable.
        }
      }
    }
  }

  // --- shard-gateway-discipline ---
  // The sharded event loop's machinery (ShardedEventLoop, ShardMailbox and
  // the window/post bookkeeping structs — anything named *Shard* declared
  // under src/sim) is the simulation's one concurrency boundary. Hot-path
  // component code in src/{core,mac,aqm,net} must stay shard-oblivious:
  // the only sanctioned crossing is Simulation::PostCross*, which routes
  // through the mailbox gateway. Naming a shard *type* from a component TU
  // couples it to the parallel machinery (the shard-domain *functions* like
  // CurrentShardDomain are fine — they are the read-only context query).
  void LintShardGatewayDiscipline() {
    std::set<std::string> shard_types;
    for (const auto& [name, declaring_files] : index_.files_by_type) {
      if (name.find("Shard") == std::string::npos) continue;
      for (const std::string& f : declaring_files) {
        if (StartsWith(f, "src/sim/")) {
          shard_types.insert(name);
          break;
        }
      }
    }
    for (const FileData& file : files_) {
      if (!InHotDir(file.path) || StartsWith(file.path, "src/sim/")) continue;
      for (size_t i = 0; i < file.code.size(); ++i) {
        const std::string& code = file.code[i];
        for (size_t k = 0; k < code.size();) {
          if (!IsIdentChar(code[k])) {
            ++k;
            continue;
          }
          const size_t start = k;
          while (k < code.size() && IsIdentChar(code[k])) ++k;
          const std::string ident = code.substr(start, k - start);
          if (shard_types.count(ident) == 0) continue;
          Report(file, "shard-gateway-discipline", static_cast<int>(i) + 1,
                 "component TU names shard type `" + ident +
                     "`; hot-path code stays shard-oblivious — cross domains only "
                     "through Simulation::PostCross* (the mailbox gateway)");
          break;  // One finding per line keeps the output readable.
        }
      }
    }
  }

  // --- lock-order ---
  // tools/analyze/lock_order.txt declares the lock hierarchy, outermost
  // first. Acquiring a lock that the hierarchy places *before* one already
  // held is an inversion (a deadlock with any thread locking in the
  // declared order); re-acquiring a held lock self-deadlocks outright.
  // Locks not listed are outside the declared hierarchy and never flagged;
  // without a hierarchy file only the (unconditional) re-acquisition check
  // runs.
  void LintLockOrder() {
    const fs::path p = fs::path(options_.repo_root) / options_.lock_order_file;
    std::map<std::string, int> rank;
    if (fs::exists(p)) {
      const std::vector<std::string> order = ReadListFile(p);
      for (size_t i = 0; i < order.size(); ++i) {
        rank.emplace(order[i], static_cast<int>(i));
      }
    }
    for (const LockAcquisition& acq : index_.acquisitions) {
      for (const std::string& held : acq.held) {
        if (held == acq.lock_name) {
          ReportAt(acq.file, "lock-order", acq.line,
                   "re-acquisition of already-held lock `" + held + "` self-deadlocks");
          continue;
        }
        const auto held_rank = rank.find(held);
        const auto acq_rank = rank.find(acq.lock_name);
        if (held_rank == rank.end() || acq_rank == rank.end()) continue;
        if (held_rank->second > acq_rank->second) {
          ReportAt(acq.file, "lock-order", acq.line,
                   "acquires `" + acq.lock_name + "` while holding `" + held +
                       "`, inverting the declared hierarchy (tools/analyze/lock_order.txt "
                       "orders `" +
                       acq.lock_name + "` before `" + held + "`)");
        }
      }
    }
  }

  // --- hot-std-function / hot-naked-new / hot-shared-ptr / no-const-cast /
  //     mutable-static / no-bits-include ---
  void LintHotConstructs(const FileData& file) {
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& code = file.code[i];
      const int line = static_cast<int>(i) + 1;
      if (StartsWith(file.include_targets[i], "bits/")) {
        Report(file, "no-bits-include", line,
               "libstdc++-internal <bits/...> header; include the public header");
      }
      if (!InHotDir(file.path)) continue;
      if (code.find("std::function") != std::string::npos) {
        Report(file, "hot-std-function", line,
               "std::function in a hot-path directory; use FunctionRef (non-owning "
               "call-scoped hooks) or InlineFunction (owned callbacks)");
      }
      if (code.find("shared_ptr") != std::string::npos) {
        Report(file, "hot-shared-ptr", line,
               "shared_ptr in a hot-path directory; packet/event paths move unique "
               "ownership");
      }
      if (HasToken(code, "const_cast")) {
        Report(file, "no-const-cast", line, "const_cast in a hot-path directory");
      }
      size_t pos = FindToken(code, "new");
      if (pos != std::string::npos) {
        Report(file, "hot-naked-new", line,
               "naked new in a hot-path directory; use containers, make_unique or the "
               "packet pool");
      }
      pos = FindToken(code, "delete");
      while (pos != std::string::npos) {
        // `= delete;` (deleted members) is not a deallocation.
        size_t prev = pos;
        while (prev > 0 && std::isspace(static_cast<unsigned char>(code[prev - 1])) != 0) --prev;
        if (prev == 0 || code[prev - 1] != '=') {
          Report(file, "hot-naked-new", line, "naked delete in a hot-path directory");
          break;
        }
        pos = FindToken(code, "delete", pos + 6);
      }
      MaybeReportMutableStatic(file, code, line);
    }
  }

  // --- trace-macro-discipline ---
  // Hot-path code traces through the AF_TRACE_* macros only: they are the
  // one spelling that compiles to nothing when AIRFAIR_TRACE is off. A
  // direct TraceBuffer call would silently keep its cost in untraced
  // builds (and dodge the macros' null-buffer gate).
  void LintTraceMacroDiscipline(const FileData& file) {
    static const char* kDirectUse[] = {"TraceBuffer", "CurrentTraceBuffer",
                                       "SetCurrentTraceBuffer", "ScopedTraceBuffer"};
    if (!InHotDir(file.path)) return;
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& code = file.code[i];
      const int line = static_cast<int>(i) + 1;
      for (const char* token : kDirectUse) {
        if (HasToken(code, token)) {
          Report(file, "trace-macro-discipline", line,
                 std::string(token) +
                     " used directly in a hot-path directory; trace through the "
                     "AF_TRACE_* macros so untraced builds compile it out");
          break;
        }
      }
    }
  }

  void MaybeReportMutableStatic(const FileData& file, const std::string& code, int line) {
    const size_t pos = FindToken(code, "static");
    if (pos == std::string::npos) return;
    const std::string rest = code.substr(pos);
    if (HasToken(rest, "const") || HasToken(rest, "constexpr")) return;
    // A '(' before the statement end means a function declaration/definition,
    // not a variable. No terminator on this line: multi-line signature.
    const size_t terminator = std::min(rest.find(';'), rest.find('='));
    if (terminator == std::string::npos) return;
    const size_t paren = rest.find('(');
    if (paren != std::string::npos && paren < terminator) return;
    Report(file, "mutable-static", line,
           "mutable static state in a hot-path directory (hidden cross-run state; "
           "races under AIRFAIR_THREADS)");
  }

  // --- use-af-check ---
  void LintAfCheck(const FileData& file) {
    if (!InSrc(file.path)) return;
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& code = file.code[i];
      const int line = static_cast<int>(i) + 1;
      if (file.include_targets[i] == "cassert") {
        Report(file, "use-af-check", line, "<cassert> include; use src/util/check.h");
      }
      const size_t pos = FindToken(code, "assert");
      if (pos != std::string::npos && code.find('(', pos + 6) != std::string::npos) {
        Report(file, "use-af-check", line,
               "assert(); use AF_CHECK/AF_DCHECK (messages, failure handler, audit "
               "integration)");
      }
    }
  }

  // --- include-self-first ---
  void LintIncludes(const FileData& file) {
    if (file.is_header) return;
    if (!InSrc(file.path) && !StartsWith(file.path, "tools/")) return;
    const std::string self = PairedHeader(file.path);
    if (self.empty()) return;
    if (Find(self) == nullptr && !fs::exists(fs::path(options_.repo_root) / self)) return;
    if (file.includes.empty() || file.includes.front() != self) {
      const int line = file.include_lines.empty() ? 0 : file.include_lines.front();
      Report(file, "include-self-first", line,
             "first include must be the file's own header \"" + self + "\"");
    }
  }

  // --- iwyu-lite ---
  struct Symbol {
    const char* token;
    const char* header;
  };

  void LintIwyu(const FileData& file) {
    static const Symbol kSymbols[] = {
        {"std::vector", "vector"},
        {"std::deque", "deque"},
        {"std::string", "string"},
        {"std::to_string", "string"},
        {"std::map", "map"},
        {"std::multimap", "map"},
        {"std::unordered_map", "unordered_map"},
        {"std::unordered_set", "unordered_set"},
        {"std::set", "set"},
        {"std::unique_ptr", "memory"},
        {"std::make_unique", "memory"},
        {"std::shared_ptr", "memory"},
        {"std::move", "utility"},
        {"std::swap", "utility"},
        {"std::pair", "utility"},
        {"std::ostringstream", "sstream"},
        {"std::istringstream", "sstream"},
        {"std::stringstream", "sstream"},
        {"std::min", "algorithm"},
        {"std::max", "algorithm"},
        {"std::sort", "algorithm"},
        {"std::clamp", "algorithm"},
        {"std::lower_bound", "algorithm"},
        {"std::getenv", "cstdlib"},
        {"std::atoi", "cstdlib"},
        {"std::atof", "cstdlib"},
        {"std::function", "functional"},
        {"std::mutex", "mutex"},
        {"std::lock_guard", "mutex"},
        {"std::thread", "thread"},
        {"std::optional", "optional"},
        {"std::array", "array"},
        {"std::chrono", "chrono"},
        {"std::ofstream", "fstream"},
        {"std::ifstream", "fstream"},
    };
    if (!InSrc(file.path) && !StartsWith(file.path, "tools/")) return;
    const std::set<std::string> includes = EffectiveIncludes(file);
    std::set<std::string> reported;
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& code = file.code[i];
      if (code.find("std::") == std::string::npos) continue;
      for (const Symbol& sym : kSymbols) {
        if (includes.count(sym.header) > 0 || reported.count(sym.token) > 0) continue;
        if (!HasToken(code, sym.token)) continue;
        const int line = static_cast<int>(i) + 1;
        if (!Suppressed(file, "iwyu-lite", line)) {
          std::lock_guard<std::mutex> lock(findings_mutex_);
          result_.findings.push_back(
              LintFinding{"iwyu-lite", file.path, line,
                          std::string(sym.token) + " used without <" + sym.header + ">"});
        }
        reported.insert(sym.token);
      }
    }
  }

  // --- header-guard ---
  void LintHeaderGuard(const FileData& file) {
    if (!file.is_header) return;
    std::string guard = "AIRFAIR_";
    for (const char c : file.path) {
      guard += IsIdentChar(c) ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                              : '_';
    }
    guard += '_';
    bool has_ifndef = false;
    bool has_define = false;
    int pragma_line = 0;
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string code = Trim(file.code[i]);
      if (code == "#ifndef " + guard) has_ifndef = true;
      if (code == "#define " + guard) has_define = true;
      if (StartsWith(code, "#pragma once")) pragma_line = static_cast<int>(i) + 1;
    }
    if (pragma_line != 0) {
      Report(file, "header-guard", pragma_line,
             "#pragma once; project convention is the include guard " + guard);
      return;
    }
    if (!has_ifndef || !has_define) {
      Report(file, "header-guard", 0, "missing or mismatched include guard; expected " + guard);
    }
  }

  // --- no-using-namespace ---
  void LintUsingNamespace(const FileData& file) {
    if (!file.is_header) return;
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (HasToken(file.code[i], "using") &&
          FindToken(file.code[i], "namespace") != std::string::npos &&
          file.code[i].find("using") < file.code[i].find("namespace")) {
        Report(file, "no-using-namespace", static_cast<int>(i) + 1,
               "using namespace in a header leaks into every includer");
      }
    }
  }

  // --- core-needs-test ---
  void LintCoreNeedsTest() {
    // Coverage search runs over tests/ on disk so it works no matter which
    // roots were requested.
    std::set<std::string> test_includes;
    const fs::path tests_dir = fs::path(options_.repo_root) / "tests";
    if (fs::is_directory(tests_dir)) {
      for (const auto& entry : fs::recursive_directory_iterator(tests_dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cc" && ext != ".h") continue;
        std::ifstream in(entry.path());
        std::string line;
        bool in_block = false;
        while (std::getline(in, line)) {
          const std::string code = Trim(StripLine(line, &in_block).code);
          if (code.empty() || code[0] != '#') continue;
          const std::string inc = ParseInclude(line);
          if (!inc.empty()) test_includes.insert(inc);
        }
      }
    }
    for (const FileData& file : files_) {
      if (file.is_header) continue;
      if (!StartsWith(file.path, "src/core/") && !StartsWith(file.path, "src/aqm/")) continue;
      const std::string header = PairedHeader(file.path);
      if (test_includes.count(header) > 0 || test_includes.count(file.path) > 0) continue;
      Report(file, "core-needs-test", 0,
             "no test under tests/ includes \"" + header +
                 "\"; src/core and src/aqm require direct test coverage");
    }
  }

  // --- audit-registration ---
  void LintAuditRegistration() {
    // Files that register checks with the auditor.
    std::vector<const FileData*> registrars;
    for (const FileData& f : files_) {
      for (const std::string& code : f.code) {
        if (code.find("AddCheck(") != std::string::npos ||
            code.find("RegisterAudits(") != std::string::npos) {
          registrars.push_back(&f);
          break;
        }
      }
    }
    for (const FileData& file : files_) {
      if (!file.is_header || !InHotDir(file.path)) continue;
      int decl_line = 0;
      for (size_t i = 0; i < file.code.size(); ++i) {
        if (HasToken(file.code[i], "CheckInvariants")) {
          decl_line = static_cast<int>(i) + 1;
          break;
        }
      }
      if (decl_line == 0) continue;
      bool registered = false;
      for (const FileData* reg : registrars) {
        if (reg == &file) continue;
        if (EffectiveIncludes(*reg).count(file.path) > 0) {
          registered = true;
          break;
        }
      }
      if (!registered) {
        // Delegation: another CheckInvariants-declaring header includes this
        // one and forwards the audit (e.g. mac_queues.h -> intrusive_list.h).
        for (const FileData& other : files_) {
          if (&other == &file || !other.is_header) continue;
          if (other.include_set.count(file.path) == 0) continue;
          bool declares = false;
          for (const std::string& code : other.code) {
            if (HasToken(code, "CheckInvariants")) {
              declares = true;
              break;
            }
          }
          if (declares) {
            registered = true;
            break;
          }
        }
      }
      if (!registered) {
        Report(file, "audit-registration", decl_line,
               "component declares CheckInvariants but nothing registers it with the "
               "auditor (AddCheck/RegisterAudits)");
      }
    }
  }

  // -------------------------------------------------------------------------
  // Flow-sensitive rules: per-function CFGs (tools/analyze/cfg.h) + forward
  // dataflow (tools/analyze/dataflow.h). All four run per file, inside the
  // parallel stage — they read only this file's CFGs and the shared
  // read-only index.
  // -------------------------------------------------------------------------

  // Names of functions declared with AF_NODISCARD anywhere in the tree.
  // Matching is by name (the engine has no overload resolution); the macro
  // definition line itself starts with '#' and is skipped.
  void CollectNodiscardNames() {
    for (const FileData& file : files_) {
      for (const std::string& code : file.code) {
        const std::string trimmed = Trim(code);
        if (!trimmed.empty() && trimmed[0] == '#') continue;
        const size_t pos = FindToken(code, "AF_NODISCARD");
        if (pos == std::string::npos) continue;
        const size_t open = code.find('(', pos);
        if (open == std::string::npos) continue;  // Name on the next line: skip.
        size_t e = open;
        while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0) --e;
        size_t s = e;
        while (s > 0 && IsIdentChar(code[s - 1])) --s;
        if (s < e) nodiscard_names_.insert(code.substr(s, e - s));
      }
    }
  }

  void LintFlowRules(const FileData& file) {
    const bool check_discard = !nodiscard_names_.empty();
    const bool check_src = InSrc(file.path);
    if (!check_discard && !check_src) return;
    const std::vector<FunctionCfg> cfgs = BuildFileCfgs(file.code);
    if (cfgs.empty()) return;

    // Guarded fields whose declaring class lives in this file or its paired
    // header/cc — the files whose functions can be their member functions.
    std::map<std::string, std::string> guarded;   // field -> guard lock name
    std::set<std::string> local_classes;          // ctor/dtor detection
    if (check_src) {
      const std::string paired = PairedHeader(file.path);
      const auto applies = [&](const std::string& decl_file) {
        return decl_file == file.path || (!paired.empty() && decl_file == paired) ||
               PairedHeader(decl_file) == file.path;
      };
      for (const ClassSymbol& cls : index_.classes) {
        bool local = false;
        for (const FieldSymbol& f : cls.fields) {
          if (!applies(f.file)) continue;
          local = true;
          if (!f.guard.empty()) guarded[f.name] = f.guard;
        }
        if (local || applies(cls.file)) local_classes.insert(cls.name);
      }
      for (const StaticSymbol& s : index_.statics) {
        if (!s.guard.empty() && s.file == file.path) guarded[s.name] = s.guard;
      }
    }

    for (const FunctionCfg& cfg : cfgs) {
      CheckFunctionFlow(file, cfg, guarded, local_classes);
    }
  }

  void CheckFunctionFlow(const FileData& file, const FunctionCfg& cfg,
                         const std::map<std::string, std::string>& guarded,
                         const std::set<std::string>& local_classes) {
    if (!nodiscard_names_.empty()) CheckUnusedResult(file, cfg);
    if (InSrc(file.path)) {
      CheckUseAfterMove(file, cfg);
      if (!guarded.empty()) CheckGuardedFieldPath(file, cfg, local_classes, guarded);
    }
    if (InCallbackDirs(file.path)) CheckCallbackLifetime(file, cfg);
    for (const FunctionCfg& lambda : cfg.lambdas) {
      CheckFunctionFlow(file, lambda, guarded, local_classes);
    }
  }

  // --- unused-result ---
  // A full-expression statement that is nothing but a call to an
  // AF_NODISCARD function ("pool.Allocate();") discards the result. The
  // compiler enforces the same via [[nodiscard]]; the lint rule mirrors it
  // into CI annotations and honours allow() suppressions. `(void)` casts
  // are the sanctioned explicit discard.
  void CheckUnusedResult(const FileData& file, const FunctionCfg& cfg) {
    for (const CfgBlock& block : cfg.blocks) {
      for (const CfgStmt& stmt : block.stmts) {
        if (stmt.is_return) continue;
        std::vector<std::string> toks = SplitTokens(stmt.text);
        size_t end = toks.size();
        if (end > 0 && toks[end - 1] == ";") --end;
        if (end < 3) continue;
        if (toks[0] == "(" && toks[1] == "void" && toks[2] == ")") continue;
        size_t open = std::string::npos;
        for (size_t i = 0; i < end; ++i) {
          if (toks[i] == "(") {
            open = i;
            break;
          }
        }
        if (open == std::string::npos || open == 0) continue;
        const std::string& name = toks[open - 1];
        if (nodiscard_names_.count(name) == 0) continue;
        // Everything before the name must be a bare receiver chain — any
        // operator ('=', 'return', '<<') means the result is consumed.
        bool chain = true;
        for (size_t i = 0; i + 1 < open; ++i) {
          const std::string& t = toks[i];
          if (t == "." || t == "->" || t == "::" || IsIdentToken(t)) continue;
          chain = false;
          break;
        }
        if (!chain) continue;
        // The call's ')' must end the statement; trailing '.'/'->' means
        // the result is used.
        int depth = 0;
        size_t close = std::string::npos;
        for (size_t i = open; i < end; ++i) {
          if (toks[i] == "(") ++depth;
          if (toks[i] == ")" && --depth == 0) {
            close = i;
            break;
          }
        }
        if (close != end - 1) continue;
        Report(file, "unused-result", stmt.line,
               "result of AF_NODISCARD function `" + name +
                   "` is discarded; store it, cast to (void), or use the detached variant");
      }
    }
  }

  // --- use-after-move ---
  // Tracks locals/parameters of the move-only hot-path types. std::move(v)
  // sends v to the moved state; the may-join makes that sticky across any
  // path reaching a later use. Reassignment, .reset() or a fresh
  // declaration revives the name. Null checks of the (guaranteed-null)
  // moved-from smart pointers are allowed uses.
  static std::set<std::string> TrackedDecls(const std::vector<std::string>& toks) {
    std::set<std::string> vars;
    for (size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i];
      size_t j = i + 1;
      bool typed = false;
      if (t == "PacketPtr" || t == "EventFn") {
        typed = true;
      } else if (t == "InlineFunction" || t == "unique_ptr") {
        typed = true;
        if (j < toks.size() && toks[j] == "<") {  // Skip template arguments.
          int depth = 0;
          while (j < toks.size()) {
            if (toks[j] == "<") ++depth;
            if (toks[j] == ">" && --depth == 0) {
              ++j;
              break;
            }
            if (toks[j] == ">>") {
              depth -= 2;
              if (depth <= 0) {
                ++j;
                break;
              }
            }
            ++j;
          }
        }
      }
      if (!typed) continue;
      while (j < toks.size() &&
             (toks[j] == "&" || toks[j] == "&&" || toks[j] == "*" || toks[j] == "const")) {
        ++j;
      }
      if (j < toks.size() && IsIdentToken(toks[j])) vars.insert(toks[j]);
    }
    return vars;
  }

  void CheckUseAfterMove(const FileData& file, const FunctionCfg& cfg) {
    std::set<std::string> tracked = TrackedDecls(SplitTokens(cfg.head));
    for (const CfgBlock& block : cfg.blocks) {
      for (const CfgStmt& stmt : block.stmts) {
        const std::vector<std::string> toks = SplitTokens(stmt.text);
        // for-headers declare loop-scoped names (range-for rebinds each
        // iteration); not tracked — documented false negative.
        if (!toks.empty() && toks[0] == "for") continue;
        const std::set<std::string> decls = TrackedDecls(toks);
        tracked.insert(decls.begin(), decls.end());
      }
    }
    if (tracked.empty()) return;

    const TransferFn transfer = [tracked](const CfgStmt& stmt, VarState* state) {
      const std::vector<std::string> toks = SplitTokens(stmt.text);
      // Revivals first, then moves: in `[p = std::move(p)] <lambda>` the
      // init-capture's '=' binds a *new* name — the enclosing local ends
      // the statement moved, not revived.
      for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (tracked.count(toks[i]) == 0) continue;
        if (toks[i + 1] == "=" ||
            (toks[i + 1] == "." && i + 2 < toks.size() && toks[i + 2] == "reset")) {
          (*state)[toks[i]] = 0;
        }
      }
      if (!toks.empty() && toks[0] != "for") {
        for (const std::string& v : TrackedDecls(toks)) (*state)[v] = 0;
      }
      for (size_t i = 0; i + 5 < toks.size(); ++i) {
        if (toks[i] == "std" && toks[i + 1] == "::" && toks[i + 2] == "move" &&
            toks[i + 3] == "(" && toks[i + 5] == ")" && tracked.count(toks[i + 4]) > 0) {
          (*state)[toks[i + 4]] = 1;
        }
      }
    };
    ForwardDataflow flow(cfg, JoinKind::kMay, transfer);
    flow.Solve(VarState{});
    flow.Visit([&](const CfgStmt& stmt, const VarState& before) {
      const std::vector<std::string> toks = SplitTokens(stmt.text);
      const std::set<std::string> decls =
          (!toks.empty() && toks[0] == "for") ? std::set<std::string>{} : TrackedDecls(toks);
      for (size_t i = 0; i < toks.size(); ++i) {
        const std::string& v = toks[i];
        if (tracked.count(v) == 0) continue;
        const auto it = before.find(v);
        if (it == before.end() || it->second == 0) continue;
        if (decls.count(v) > 0) continue;  // Shadowing re-declaration.
        const std::string prev = i > 0 ? toks[i - 1] : "";
        const std::string next = i + 1 < toks.size() ? toks[i + 1] : "";
        if (next == "=") continue;  // Reassignment target.
        if (next == "." && i + 2 < toks.size() && toks[i + 2] == "reset") continue;
        if (prev == "!" || prev == "==" || prev == "!=" || next == "==" || next == "!=") {
          continue;  // Null/boolean checks: moved-from pointers are null.
        }
        const std::string& head = toks[0];
        if ((head == "if" || head == "while" || head == "do-while") &&
            (prev == "(" || prev == "&&" || prev == "||") &&
            (next == ")" || next == "&&" || next == "||")) {
          continue;  // Boolean test in a condition.
        }
        Report(file, "use-after-move", stmt.line,
               "`" + v +
                   "` may have been moved-from on a path reaching this use; reassign or "
                   ".reset() it first (moved-from hot-path handles are null/empty)");
        break;  // One finding per statement.
      }
    });
  }

  // --- guarded-field-path ---
  // An AF_GUARDED_BY field may only be touched where its guard's RAII scope
  // encloses the statement (cfg.h records the lexical held set per
  // statement — with RAII-only locking that is exactly path-aware reach) or
  // the function declares AF_REQUIRES(guard). Constructors/destructors run
  // single-owner and are exempt, as is AF_NO_THREAD_SAFETY_ANALYSIS.
  void CheckGuardedFieldPath(const FileData& file, const FunctionCfg& cfg,
                             const std::set<std::string>& local_classes,
                             const std::map<std::string, std::string>& guarded) {
    if (HasToken(cfg.head, "AF_NO_THREAD_SAFETY_ANALYSIS")) return;
    if (local_classes.count(cfg.name) > 0) return;         // Constructor.
    if (cfg.head.find('~') != std::string::npos) return;   // Destructor.
    std::set<std::string> entry_held;
    const size_t req = FindToken(cfg.head, "AF_REQUIRES");
    if (req != std::string::npos) {
      const size_t open = cfg.head.find('(', req);
      const size_t close = open == std::string::npos ? std::string::npos
                                                     : cfg.head.find(')', open);
      if (close != std::string::npos) {
        std::string name;
        for (size_t i = open + 1; i < close;) {
          if (IsIdentChar(cfg.head[i])) {
            const size_t start = i;
            while (i < close && IsIdentChar(cfg.head[i])) ++i;
            entry_held.insert(cfg.head.substr(start, i - start));
            continue;
          }
          ++i;
        }
      }
    }
    for (const CfgBlock& block : cfg.blocks) {
      for (const CfgStmt& stmt : block.stmts) {
        const std::vector<std::string> toks = SplitTokens(stmt.text);
        for (size_t i = 0; i < toks.size(); ++i) {
          const auto it = guarded.find(toks[i]);
          if (it == guarded.end()) continue;
          // `other.field_` touches another instance; only `field_` and
          // `this->field_` are this object's state.
          if (i >= 2 && (toks[i - 1] == "." || toks[i - 1] == "->") && toks[i - 2] != "this") {
            continue;
          }
          const std::string& guard = it->second;
          const bool held =
              entry_held.count(guard) > 0 ||
              std::find(stmt.held_locks.begin(), stmt.held_locks.end(), guard) !=
                  stmt.held_locks.end();
          if (held) continue;
          Report(file, "guarded-field-path", stmt.line,
                 "`" + toks[i] + "` is AF_GUARDED_BY(" + guard +
                     ") but no enclosing MutexLock scope or AF_REQUIRES holds it on this path");
          break;  // One finding per statement.
        }
      }
    }
  }

  // --- callback-lifetime ---
  // Detached posts (PostAt/PostAfter/PostCross*) cannot be cancelled, so a
  // lambda that captures `this` (or by-reference state) posted detached
  // outlives no-one's control: if the component dies before the event
  // fires, the callback runs on a dangling pointer. Such closures must go
  // through the handle-returning Schedule*/At/After and keep the handle —
  // and a handle bound to a local must actually be retained (stored,
  // returned or passed on) on every path, or it silently degrades back to
  // a detached post (EventHandle destruction does not cancel).
  static bool UnsafeCaptures(const std::string& captures) {
    const std::vector<std::string> toks = SplitTokens(captures);
    size_t i = 0;
    while (i < toks.size()) {
      // One top-level capture entry: up to ',' at depth 0.
      std::vector<std::string> entry;
      int depth = 0;
      while (i < toks.size()) {
        const std::string& t = toks[i];
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        if (t == "," && depth == 0) {
          ++i;
          break;
        }
        entry.push_back(t);
        ++i;
      }
      if (entry.empty()) continue;
      if (entry[0] == "&" || entry[0] == "=") return true;  // By-ref / default.
      if (entry[0] == "this") return true;
      // `name = expr` init-captures are safe copies unless the expression
      // smuggles `this` in ("self = this"). `*this` is a full copy: safe.
      if (entry[0] != "*" && Contains(entry, "this")) return true;
    }
    return false;
  }

  static std::vector<size_t> LambdaRefs(const std::vector<std::string>& toks) {
    std::vector<size_t> refs;
    for (const std::string& t : toks) {
      if (t.size() > 9 && t.compare(0, 8, "<lambda#") == 0) {
        refs.push_back(static_cast<size_t>(std::atoi(t.c_str() + 8)));
      }
    }
    return refs;
  }

  void CheckCallbackLifetime(const FileData& file, const FunctionCfg& cfg) {
    static const char* kDetached[] = {"PostAt", "PostAfter", "PostCrossAt", "PostCrossAfter"};
    static const char* kHandled[] = {"ScheduleAt", "ScheduleAfter", "At", "After"};
    std::map<std::string, int> sched_line;  // local handle var -> schedule stmt line
    for (const CfgBlock& block : cfg.blocks) {
      for (const CfgStmt& stmt : block.stmts) {
        const std::vector<std::string> toks = SplitTokens(stmt.text);
        const std::vector<size_t> refs = LambdaRefs(toks);
        if (refs.empty()) continue;
        bool unsafe = false;
        for (const size_t k : refs) {
          if (k < cfg.lambdas.size() && UnsafeCaptures(cfg.lambdas[k].captures)) unsafe = true;
        }
        if (!unsafe) continue;
        bool detached = false;
        for (const char* post : kDetached) detached = detached || Contains(toks, post);
        if (detached) {
          Report(file, "callback-lifetime", stmt.line,
                 "lambda capturing `this`/by-reference state posted detached (Post*/"
                 "PostCross*) — it cannot be cancelled if the captured object dies first; "
                 "use the handle-returning Schedule*/At/After and retain the EventHandle, "
                 "or suppress with a reason why the target provably outlives the loop");
          continue;
        }
        bool handled = false;
        for (const char* sched : kHandled) handled = handled || Contains(toks, sched);
        if (!handled) continue;
        // Where does the handle go? Member-ish targets and returns retain
        // it; a bare local needs the every-path dataflow check below.
        // (A fully discarded result is unused-result's finding, not ours.)
        size_t assign = std::string::npos;
        for (size_t i = 1; i < toks.size(); ++i) {
          if (toks[i] == "=") {
            assign = i;
            break;
          }
        }
        if (assign == std::string::npos || assign == 0) continue;
        const std::string& lhs = toks[assign - 1];
        if (!IsIdentToken(lhs)) continue;
        const bool member_target =
            lhs.back() == '_' ||
            (assign >= 2 && (toks[assign - 2] == "." || toks[assign - 2] == "->"));
        if (member_target || stmt.is_return) continue;
        sched_line[lhs] = stmt.line;
      }
    }
    if (sched_line.empty()) return;
    const TransferFn transfer = [sched_line](const CfgStmt& stmt, VarState* state) {
      const std::vector<std::string> toks = SplitTokens(stmt.text);
      for (const auto& [var, line] : sched_line) {
        if (!Contains(toks, var)) continue;
        (*state)[var] = stmt.line == line ? 1 : 0;  // 1 = not yet retained.
      }
    };
    ForwardDataflow flow(cfg, JoinKind::kMay, transfer);
    flow.Solve(VarState{});
    const VarState& at_exit = flow.ExitState();
    for (const auto& [var, line] : sched_line) {
      const auto it = at_exit.find(var);
      if (it == at_exit.end() || it->second == 0) continue;
      Report(file, "callback-lifetime", line,
             "EventHandle `" + var +
                 "` for a this-capturing callback is dropped on some path before being "
                 "stored, returned or passed on — destruction does not cancel, so the "
                 "callback degrades to an uncancellable detached post");
    }
  }

  LintOptions options_;
  std::vector<FileData> files_;
  SymbolIndex index_;
  std::set<std::string> nodiscard_names_;
  std::mutex findings_mutex_;
  LintResult result_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<RuleInfo> AllRules() {
  return {
      {"hot-std-function", "std::function banned in src/{sim,mac,core,aqm,net}"},
      {"hot-naked-new", "naked new/delete banned in hot-path directories"},
      {"hot-shared-ptr", "shared_ptr banned in hot-path directories"},
      {"no-const-cast", "const_cast banned in hot-path directories"},
      {"mutable-static", "mutable static state banned in hot-path directories"},
      {"trace-macro-discipline", "hot-path code traces via AF_TRACE_* macros only"},
      {"use-af-check", "assert()/<cassert> banned in src/; use AF_CHECK/AF_DCHECK"},
      {"include-self-first", "a .cc file's first include is its own header"},
      {"no-bits-include", "no libstdc++-internal <bits/...> includes"},
      {"iwyu-lite", "used std:: symbols must be covered by includes"},
      {"header-guard", "headers carry the canonical AIRFAIR_<PATH>_ guard"},
      {"core-needs-test", "src/core and src/aqm .cc files need a test including them"},
      {"audit-registration", "CheckInvariants components must be registered with the auditor"},
      {"no-using-namespace", "no using namespace in headers"},
      {"guarded-field-discipline",
       "mutexes, atomics and mutable statics in src/ declare their discipline "
       "(Mutex wrapper, AF_GUARDED_BY, AF_ATOMIC)"},
      {"domain-crossing",
       "thread-entry TUs touch event-loop-domain types only via declared gateways"},
      {"shard-gateway-discipline",
       "hot-path component TUs never name shard machinery types; cross domains via "
       "Simulation::PostCross* only"},
      {"lock-order", "lock acquisitions nest per the declared hierarchy (lock_order.txt)"},
      {"use-after-move",
       "moved-from PacketPtr/EventFn/InlineFunction/unique_ptr locals may not be used "
       "on any path before reassignment (flow-sensitive, src/)"},
      {"guarded-field-path",
       "AF_GUARDED_BY fields are only touched where the guard's MutexLock scope or "
       "AF_REQUIRES holds on the path (flow-sensitive, src/)"},
      {"callback-lifetime",
       "this-capturing lambdas in src/{sim,mac,core,aqm,net,obs} are not posted "
       "detached; schedule handles must be retained on every path"},
      {"unused-result",
       "results of AF_NODISCARD functions (EventLoop schedules, PacketPool::Allocate) "
       "may not be silently discarded"},
  };
}

LintResult RunLint(const LintOptions& options) { return Linter(options).Run(); }

std::string ResultToJson(const LintResult& result) {
  std::ostringstream out;
  out << "{\"files_scanned\":" << result.files_scanned
      << ",\"violations\":" << result.findings.size() << ",\"findings\":[";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const LintFinding& f = result.findings[i];
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << JsonEscape(f.rule) << "\",\"file\":\"" << JsonEscape(f.file)
        << "\",\"line\":" << f.line << ",\"message\":\"" << JsonEscape(f.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string StripCodeLine(const std::string& line, bool* in_block_comment) {
  return StripLine(line, in_block_comment).code;
}

}  // namespace analyze
}  // namespace airfair

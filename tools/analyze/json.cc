#include "tools/analyze/json.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace airfair {
namespace analyze {
namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out)) {
      *error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u':
            // Keep it simple: skip the four hex digits, substitute '?'.
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            pos_ += 4;
            *out += '?';
            break;
          default: *out += esc;
        }
        continue;
      }
      *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object[std::move(key)] = std::move(value);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

double NumberOr(const JsonValue& object, const std::string& key, double fallback) {
  const JsonValue* value = object.Get(key);
  return value != nullptr && value->type == JsonValue::Type::kNumber ? value->number : fallback;
}

std::string StringOr(const JsonValue& object, const std::string& key,
                     const std::string& fallback) {
  const JsonValue* value = object.Get(key);
  return value != nullptr && value->type == JsonValue::Type::kString ? value->str : fallback;
}

}  // namespace analyze
}  // namespace airfair

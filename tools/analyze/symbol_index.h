// Tree-wide symbol index: pass 1 of the lint engine's two-pass analysis.
//
// The original airfair_lint rules were per-file and lexical: each rule saw
// one file's stripped lines and nothing else. The concurrency-discipline
// rules added for the sharded-event-loop groundwork need *structure* that
// spans files — which classes exist and where, which members are mutexes /
// atomics / mutable statics and whether they carry thread-safety
// annotations, and where locks are acquired while other locks are held. The
// symbol index extracts exactly that in one pass over every loaded file;
// the rules (pass 2) then run queries against it.
//
// This is still a lexer-level scanner, not a compiler: it tracks brace
// depth and a scope stack (namespace / class / enum) over comment-stripped
// lines, which is robust for this code base's style (one declaration per
// line, Google-ish formatting) and is kept honest by fixture tests
// (tests/tools_symbol_index_test.cc). Known limits, by design: members
// whose declarations span lines and function-pointer members are not
// indexed as fields, and manual Lock()/Unlock() calls are not treated as
// acquisitions (the project locks through RAII only).

#ifndef AIRFAIR_TOOLS_ANALYZE_SYMBOL_INDEX_H_
#define AIRFAIR_TOOLS_ANALYZE_SYMBOL_INDEX_H_

#include <map>
#include <string>
#include <vector>

namespace airfair {
namespace analyze {

// One file's worth of input: stripped code lines (comments removed, string
// literal contents blanked — see lint.h StripCodeLine) plus the raw lines,
// which the index scans for annotation macros sitting on the previous line.
struct IndexSourceFile {
  std::string path;                      // Repo-relative, forward slashes.
  const std::vector<std::string>* code = nullptr;
  const std::vector<std::string>* raw = nullptr;
};

// A data-member declaration inside a class/struct body.
struct FieldSymbol {
  std::string class_name;
  std::string name;   // Best-effort identifier (annotations stripped first).
  std::string decl;   // The stripped declaration text.
  std::string file;
  int line = 0;       // 1-based.
  bool is_static = false;
  bool is_thread_local = false;
  bool is_const = false;          // const / constexpr in the declaration.
  bool is_atomic = false;         // std::atomic<...>
  bool is_raw_mutex = false;      // std::mutex / std::recursive_mutex / std::shared_mutex
  bool is_wrapped_mutex = false;  // the annotated airfair::Mutex wrapper
  bool has_annotation = false;    // AF_GUARDED_BY / AF_PT_GUARDED_BY / AF_ATOMIC
  // Last identifier of the AF_GUARDED_BY / AF_PT_GUARDED_BY argument
  // ("chunk_mutex_" for AF_GUARDED_BY(chunk_mutex_)); "" when unguarded or
  // AF_ATOMIC. Feeds the flow-sensitive guarded-field-path rule.
  std::string guard;
};

struct ClassSymbol {
  std::string name;
  std::string file;
  int line = 0;          // Line of the class/struct/enum keyword.
  bool is_enum = false;  // enum / enum class (no fields are collected).
  std::vector<FieldSymbol> fields;
};

// A mutable static outside class-field position: namespace-scope variables
// (including anonymous-namespace globals without the `static` keyword, when
// their type is concurrency-relevant) and function-local statics.
struct StaticSymbol {
  std::string name;
  std::string decl;
  std::string file;
  int line = 0;
  bool is_function_local = false;
  bool is_thread_local = false;
  bool is_const = false;
  bool is_atomic = false;
  bool is_raw_mutex = false;
  bool is_wrapped_mutex = false;
  bool has_annotation = false;
  std::string guard;  // As in FieldSymbol.
};

// One RAII lock acquisition (MutexLock / std::lock_guard / std::unique_lock
// / std::scoped_lock), with the locks lexically held at that point.
struct LockAcquisition {
  std::string lock_name;          // Last identifier of the lock expression.
  std::vector<std::string> held;  // Outermost first; empty when unnested.
  std::string file;
  int line = 0;
};

struct SymbolIndex {
  std::vector<ClassSymbol> classes;
  std::vector<StaticSymbol> statics;
  std::vector<LockAcquisition> acquisitions;
  // Type name -> files declaring it (a name can legitimately repeat, e.g.
  // nested Config structs).
  std::map<std::string, std::vector<std::string>> files_by_type;
};

SymbolIndex BuildSymbolIndex(const std::vector<IndexSourceFile>& files);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_SYMBOL_INDEX_H_

#include "tools/analyze/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "tools/analyze/json.h"

namespace airfair {
namespace analyze {
namespace {

bool ReadFile(const std::string& path, std::string* text, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return true;
}

void AddTraceEvent(const JsonValue& event, TraceStats* stats) {
  ++stats->events;
  const std::string name = StringOr(event, "name", "");
  const std::string ph = StringOr(event, "ph", "");
  const JsonValue* args = event.Get("args");
  if (ph == "X" && name == "tx") {
    const double dur = NumberOr(event, "dur", -1.0);
    if (dur >= 0) {
      stats->tx_us.push_back(dur);
      const int tid = static_cast<int>(NumberOr(event, "tid", -1.0));
      stats->tx_airtime_us[tid] += dur;
      ++stats->tx_slices[tid];
    }
    return;
  }
  if (ph != "i" || args == nullptr) {
    return;  // Metadata, counters, unknown phases.
  }
  if (name == "dequeue") {
    const double sojourn = NumberOr(*args, "sojourn_us", -1.0);
    if (sojourn >= 0) stats->sojourn_us.push_back(sojourn);
  } else if (name == "deliver") {
    const double latency = NumberOr(*args, "latency_us", -1.0);
    if (latency >= 0) stats->latency_us.push_back(latency);
  } else if (name == "codel_drop") {
    ++stats->codel_drops;
  } else if (name == "overflow_drop") {
    ++stats->overflow_drops;
  } else if (name == "duplicate_drop") {
    ++stats->duplicate_drops;
  } else if (name == "collision") {
    ++stats->collisions;
  }
}

void PrintStageRow(const char* label, const std::vector<double>& samples,
                   std::ostream& out) {
  out << "  " << label << ": n=" << samples.size();
  if (!samples.empty()) {
    out << " p50=" << SampleQuantile(samples, 0.50) << "us"
        << " p95=" << SampleQuantile(samples, 0.95) << "us"
        << " p99=" << SampleQuantile(samples, 0.99) << "us";
  }
  out << "\n";
}

// Mirrors src/fault's 1-based FaultKind codes (the analyzer stays
// dependency-free: it reads artifacts, it does not link the simulator).
const char* PerturbationKindName(double code) {
  switch (static_cast<int>(code)) {
    case 1:
      return "leave";
    case 2:
      return "join";
    case 3:
      return "burst";
    case 4:
      return "fade";
    default:
      return "unknown";
  }
}

// Minimal expectation helper for the self-test.
struct SelfTestContext {
  std::ostream& out;
  int failures = 0;

  void Expect(bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      out << "self-test FAIL: " << what << "\n";
    }
  }
};

}  // namespace

bool ParseChromeTrace(const std::string& text, TraceStats* stats, std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) {
    return false;
  }
  if (root.type != JsonValue::Type::kObject) {
    *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    *error = "no traceEvents array";
    return false;
  }
  for (const JsonValue& event : events->array) {
    if (event.type == JsonValue::Type::kObject) {
      AddTraceEvent(event, stats);
    }
  }
  return true;
}

bool LoadChromeTrace(const std::string& path, TraceStats* stats, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) {
    return false;
  }
  if (!ParseChromeTrace(text, stats, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool ParseTimeseriesJsonl(const std::string& text, TimeseriesData* data, std::string* error) {
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    JsonValue record;
    std::string parse_error;
    if (!ParseJson(line, &record, &parse_error)) {
      *error = "line " + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    const std::string series = StringOr(record, "series", "");
    const double t_us = NumberOr(record, "t_us", -1.0);
    const JsonValue* value = record.Get("value");
    if (series.empty() || t_us < 0 || value == nullptr ||
        value->type != JsonValue::Type::kNumber) {
      *error = "line " + std::to_string(line_no) + ": not a timeseries record";
      return false;
    }
    data->series[series].emplace_back(static_cast<int64_t>(t_us), value->number);
    ++data->points;
  }
  return true;
}

bool LoadTimeseriesJsonl(const std::string& path, TimeseriesData* data, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) {
    return false;
  }
  if (!ParseTimeseriesJsonl(text, data, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

int64_t ConvergenceTimeUs(const TimeseriesData& data, const std::string& series_name,
                          double threshold) {
  const auto it = data.series.find(series_name);
  if (it == data.series.end() || it->second.empty()) {
    return -1;
  }
  const auto& points = it->second;
  // Walk backwards: the convergence point is the start of the final run of
  // samples that all sit at or above the threshold.
  int64_t converged_at = -1;
  for (auto rit = points.rbegin(); rit != points.rend(); ++rit) {
    if (rit->second < threshold) {
      break;
    }
    converged_at = rit->first;
  }
  return converged_at;
}

std::vector<ReconvergenceResult> PerturbationReconvergence(const TimeseriesData& data,
                                                           const std::string& series_name,
                                                           double threshold) {
  std::vector<ReconvergenceResult> results;
  const auto marks_it = data.series.find(kPerturbationSeries);
  if (marks_it == data.series.end() || marks_it->second.empty()) {
    return results;
  }
  const auto series_it = data.series.find(series_name);
  const std::vector<std::pair<int64_t, double>> empty;
  const auto& points = series_it == data.series.end() ? empty : series_it->second;

  // Marks are written at perturbation instants, so file order is time order;
  // sort anyway so a hand-assembled file analyzes the same way.
  std::vector<std::pair<int64_t, double>> marks = marks_it->second;
  std::stable_sort(marks.begin(), marks.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  for (size_t i = 0; i < marks.size(); ++i) {
    ReconvergenceResult r;
    r.mark_us = marks[i].first;
    r.kind_code = marks[i].second;
    const int64_t segment_end =
        i + 1 < marks.size() ? marks[i + 1].first : std::numeric_limits<int64_t>::max();
    // Segment = (mark, next mark), both ends exclusive: samples at a mark
    // instant already reflect that mark's perturbation (a churn join flips
    // the station's presence at the mark, and an active-only Jain sample on
    // the same instant sees the new roster while windowed airtime lags), so
    // a boundary sample belongs to neither the preceding segment's recovery
    // nor — being at the perturbation instant itself — the next one's.
    const auto begin = std::upper_bound(
        points.begin(), points.end(), r.mark_us,
        [](int64_t t, const std::pair<int64_t, double>& p) { return t < p.first; });
    auto end = std::lower_bound(
        begin, points.end(), segment_end,
        [](const std::pair<int64_t, double>& p, int64_t t) { return p.first < t; });
    r.segment_samples = static_cast<int64_t>(end - begin);
    // Start of the final run of in-segment samples all >= threshold.
    while (end != begin && std::prev(end)->second >= threshold) {
      --end;
      r.reconverged_at_us = end->first;
    }
    if (r.reconverged_at_us >= 0) {
      r.reconvergence_us = r.reconverged_at_us - r.mark_us;
    }
    results.push_back(r);
  }
  return results;
}

double SampleQuantile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

void PrintTraceReport(const TraceStats& stats, std::ostream& out) {
  out << "trace: " << stats.events << " events\n";
  out << "per-stage latency breakdown:\n";
  PrintStageRow("queueing (sojourn) ", stats.sojourn_us, out);
  PrintStageRow("air      (tx)      ", stats.tx_us, out);
  PrintStageRow("end-to-end         ", stats.latency_us, out);
  double total_airtime = 0.0;
  for (const auto& [tid, airtime] : stats.tx_airtime_us) {
    total_airtime += airtime;
  }
  out << "per-station airtime (tx slices):\n";
  for (const auto& [tid, airtime] : stats.tx_airtime_us) {
    const auto slices = stats.tx_slices.find(tid);
    out << "  station " << tid << ": " << airtime / 1e6 << "s over "
        << (slices == stats.tx_slices.end() ? 0 : slices->second) << " slices";
    if (total_airtime > 0) {
      out << " (share " << airtime / total_airtime << ")";
    }
    out << "\n";
  }
  out << "drops: codel=" << stats.codel_drops << " overflow=" << stats.overflow_drops
      << " duplicate=" << stats.duplicate_drops << "; collisions=" << stats.collisions
      << "\n";
}

void PrintTimeseriesReport(const TimeseriesData& data, const std::string& series_name,
                           double threshold, std::ostream& out) {
  out << "timeseries: " << data.points << " points across " << data.series.size()
      << " series\n";
  const int64_t converged = ConvergenceTimeUs(data, series_name, threshold);
  if (converged >= 0) {
    out << "convergence: " << series_name << " >= " << threshold << " from t="
        << converged << "us (" << static_cast<double>(converged) / 1e6
        << "s) onward\n";
  } else {
    out << "convergence: " << series_name << " never settles at >= " << threshold
        << "\n";
  }
}

void PrintPerturbationReport(const TimeseriesData& data, const std::string& series_name,
                             double threshold, std::ostream& out) {
  const std::vector<ReconvergenceResult> results =
      PerturbationReconvergence(data, series_name, threshold);
  out << "perturbations: " << results.size() << " marks (series " << series_name
      << ", threshold " << threshold << ")\n";
  int64_t worst_us = -1;
  bool all_reconverged = !results.empty();
  for (const ReconvergenceResult& r : results) {
    out << "  t=" << r.mark_us << "us " << PerturbationKindName(r.kind_code) << ": ";
    if (r.reconverged_at_us >= 0) {
      out << "reconverged at t=" << r.reconverged_at_us << "us (+" << r.reconvergence_us
          << "us, " << static_cast<double>(r.reconvergence_us) / 1e6 << "s)\n";
      worst_us = std::max(worst_us, r.reconvergence_us);
    } else if (r.segment_samples == 0) {
      out << "no reconvergence (no samples after mark)\n";
      all_reconverged = false;
    } else {
      out << "never reconverged within its segment\n";
      all_reconverged = false;
    }
  }
  if (all_reconverged) {
    out << "  worst reconvergence: " << worst_us << "us ("
        << static_cast<double>(worst_us) / 1e6 << "s)\n";
  }
}

int TraceStatsSelfTest(std::ostream& out) {
  SelfTestContext t{out};

  // --- Chrome trace parsing ---
  const std::string trace = R"({"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"medium0"}},
{"name":"tx","ph":"X","pid":0,"tid":0,"ts":100,"dur":50,"args":{"mpdus_ok":4,"mpdus_lost":0}},
{"name":"tx","ph":"X","pid":0,"tid":1,"ts":200,"dur":150,"args":{"mpdus_ok":1,"mpdus_lost":1}},
{"name":"dequeue","ph":"i","s":"t","pid":0,"tid":0,"ts":90,"args":{"sojourn_us":40,"depth":3}},
{"name":"deliver","ph":"i","s":"t","pid":0,"tid":0,"ts":160,"args":{"latency_us":260,"bytes":1500}},
{"name":"codel_drop","ph":"i","s":"t","pid":0,"tid":1,"ts":170,"args":{"sojourn_us":9000,"drops":1}},
{"name":"collision","ph":"i","s":"t","pid":0,"tid":999,"ts":180,"args":{"contenders":2,"penalty_us":90}}
]})";
  TraceStats stats;
  std::string error;
  t.Expect(ParseChromeTrace(trace, &stats, &error), "trace parses: " + error);
  t.Expect(stats.events == 7, "7 trace events counted");
  t.Expect(stats.tx_us.size() == 2, "2 tx slices");
  t.Expect(stats.sojourn_us.size() == 1 && stats.sojourn_us[0] == 40.0,
           "dequeue sojourn extracted");
  t.Expect(stats.latency_us.size() == 1 && stats.latency_us[0] == 260.0,
           "deliver latency extracted");
  t.Expect(stats.codel_drops == 1 && stats.collisions == 1, "drop/collision tallies");
  t.Expect(stats.tx_airtime_us[0] == 50.0 && stats.tx_airtime_us[1] == 150.0,
           "per-station airtime summed");

  TraceStats bad;
  t.Expect(!ParseChromeTrace("{}", &bad, &error), "missing traceEvents rejected");
  t.Expect(!ParseChromeTrace("not json", &bad, &error), "malformed trace rejected");

  // --- Timeseries parsing + convergence ---
  const std::string jsonl =
      R"({"t_us":1000,"series":"airtime_jain","value":0.62,"run":"Airtime n=3 seed=1"})"
      "\n"
      R"({"t_us":2000,"series":"airtime_jain","value":0.97,"run":"Airtime n=3 seed=1"})"
      "\n"
      R"({"t_us":3000,"series":"airtime_jain","value":0.93,"run":"Airtime n=3 seed=1"})"
      "\n"
      R"({"t_us":4000,"series":"airtime_jain","value":0.98,"run":"Airtime n=3 seed=1"})"
      "\n"
      R"({"t_us":5000,"series":"airtime_jain","value":0.99,"run":"Airtime n=3 seed=1"})"
      "\n"
      R"({"t_us":1000,"series":"queue_depth_packets","value":12,"run":"Airtime n=3 seed=1"})"
      "\n";
  TimeseriesData data;
  t.Expect(ParseTimeseriesJsonl(jsonl, &data, &error), "timeseries parses: " + error);
  t.Expect(data.points == 6, "6 timeseries points");
  t.Expect(data.series.size() == 2, "2 series");
  // The 0.93 dip at t=3000 interrupts the run: convergence starts at 4000.
  t.Expect(ConvergenceTimeUs(data, "airtime_jain", 0.95) == 4000,
           "convergence skips the dip");
  t.Expect(ConvergenceTimeUs(data, "airtime_jain", 0.50) == 1000,
           "low threshold converges at the first sample");
  t.Expect(ConvergenceTimeUs(data, "airtime_jain", 0.999) == -1,
           "unreachable threshold reports no convergence");
  t.Expect(ConvergenceTimeUs(data, "missing", 0.5) == -1,
           "missing series reports no convergence");
  TimeseriesData bad_data;
  t.Expect(!ParseTimeseriesJsonl("{\"nope\":1}\n", &bad_data, &error),
           "non-timeseries line rejected");

  // --- Perturbation reconvergence ---
  // Two marks: a leave at t=2500 (Jain dips to 0.70 then recovers from
  // t=4500) and a join at t=6000 whose segment never recovers.
  const std::string churn_jsonl =
      R"({"t_us":1000,"series":"airtime_jain","value":0.98,"run":"churn"})"
      "\n"
      R"({"t_us":2000,"series":"airtime_jain","value":0.97,"run":"churn"})"
      "\n"
      R"({"t_us":2500,"series":"perturbation","value":1,"run":"churn"})"
      "\n"
      R"({"t_us":3000,"series":"airtime_jain","value":0.70,"run":"churn"})"
      "\n"
      R"({"t_us":3500,"series":"airtime_jain","value":0.80,"run":"churn"})"
      "\n"
      R"({"t_us":4500,"series":"airtime_jain","value":0.96,"run":"churn"})"
      "\n"
      R"({"t_us":5500,"series":"airtime_jain","value":0.99,"run":"churn"})"
      "\n"
      // A sample on the join instant itself: it sees the post-join roster
      // (active-only Jain dips as the rejoined station starts at zero
      // windowed airtime), so it must belong to neither segment.
      R"({"t_us":6000,"series":"airtime_jain","value":0.50,"run":"churn"})"
      "\n"
      R"({"t_us":6000,"series":"perturbation","value":2,"run":"churn"})"
      "\n"
      R"({"t_us":7000,"series":"airtime_jain","value":0.97,"run":"churn"})"
      "\n"
      R"({"t_us":8000,"series":"airtime_jain","value":0.60,"run":"churn"})"
      "\n";
  TimeseriesData churn;
  t.Expect(ParseTimeseriesJsonl(churn_jsonl, &churn, &error),
           "churn timeseries parses: " + error);
  const auto recon = PerturbationReconvergence(churn, "airtime_jain", 0.95);
  t.Expect(recon.size() == 2, "two perturbation marks analyzed");
  if (recon.size() == 2) {
    t.Expect(recon[0].mark_us == 2500 && recon[0].kind_code == 1.0,
             "first mark is the leave at t=2500");
    t.Expect(recon[0].reconverged_at_us == 4500 && recon[0].reconvergence_us == 2000,
             "leave segment reconverges at t=4500 (+2000us)");
    t.Expect(recon[0].segment_samples == 4, "leave segment holds 4 samples");
    t.Expect(recon[1].reconverged_at_us == -1 && recon[1].reconvergence_us == -1,
             "join segment ending below threshold never reconverges");
    t.Expect(recon[1].segment_samples == 2,
             "non-recovery is diagnosed over a populated segment");
  }
  // A dip-free segment reconverges at its first in-segment sample, and the
  // last mark's segment runs to the end of the series.
  const auto easy = PerturbationReconvergence(churn, "airtime_jain", 0.65);
  t.Expect(easy.size() == 2 && easy[0].reconvergence_us == 500,
           "low threshold reconverges at the first post-mark sample");
  t.Expect(PerturbationReconvergence(data, "airtime_jain", 0.95).empty(),
           "no perturbation series yields no marks");
  // A trailing mark with no samples after it: reconvergence is unmeasurable
  // (segment_samples == 0), which must be reported distinctly from a
  // populated segment that ends below the threshold.
  const std::string tail_jsonl = churn_jsonl +
      R"({"t_us":9000,"series":"perturbation","value":1,"run":"churn"})"
      "\n";
  TimeseriesData tail;
  t.Expect(ParseTimeseriesJsonl(tail_jsonl, &tail, &error),
           "tail-mark timeseries parses: " + error);
  const auto tail_recon = PerturbationReconvergence(tail, "airtime_jain", 0.95);
  t.Expect(tail_recon.size() == 3, "trailing mark analyzed");
  if (tail_recon.size() == 3) {
    t.Expect(tail_recon[2].segment_samples == 0 &&
                 tail_recon[2].reconverged_at_us == -1,
             "trailing mark has an empty segment and no reconvergence");
    std::ostringstream report;
    PrintPerturbationReport(tail, "airtime_jain", 0.95, report);
    t.Expect(report.str().find("no reconvergence (no samples after mark)") !=
                 std::string::npos,
             "report distinguishes the empty-segment mark");
  }

  // --- Quantiles ---
  t.Expect(SampleQuantile({1, 2, 3, 4, 5}, 0.5) == 3.0, "median of 1..5");
  t.Expect(SampleQuantile({}, 0.5) == 0.0, "empty quantile is 0");
  t.Expect(std::abs(SampleQuantile({10, 20}, 0.25) - 12.5) < 1e-9,
           "interpolated quantile");

  if (t.failures == 0) {
    out << "trace_stats self-test: all checks passed\n";
  }
  return t.failures;
}

}  // namespace analyze
}  // namespace airfair

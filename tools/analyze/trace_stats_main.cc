// CLI for the observability-artifact analyzer (tools/analyze/trace_stats.h).
//
// Usage:
//   trace_stats [--trace chrome.json] [--timeseries points.jsonl]
//               [--series NAME] [--jain-threshold X]
//               [--require-convergence] [--perturbations]
//               [--max-reconvergence-ms X] [--self-test]
//
// With --trace it prints the per-stage latency breakdown (queueing / air /
// end-to-end), per-station airtime shares from the tx slices, and drop
// tallies. With --timeseries it prints the airtime-fairness convergence
// time: the earliest sample after which --series (default airtime_jain)
// stays at or above --jain-threshold (default 0.95).
//
// --perturbations adds the per-perturbation reconvergence report: for each
// mark the fault injector wrote into the "perturbation" series, the time
// from the mark to the point where --series recovers to --jain-threshold
// and stays there for the rest of the mark's segment.
// --max-reconvergence-ms X (implies --perturbations) gates on it: exit 1
// if the file has no perturbation marks, any segment never reconverges, or
// any reconvergence exceeds X ms.
//
// Exit codes: 0 ok, 1 gate (--require-convergence / --max-reconvergence-ms)
// unmet or self-test failure, 2 usage/parse error.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "tools/analyze/trace_stats.h"

int main(int argc, char** argv) {
  std::string trace_path;
  std::string series_path;
  std::string series_name = "airtime_jain";
  double threshold = 0.95;
  bool require_convergence = false;
  bool perturbations = false;
  double max_reconvergence_ms = -1.0;  // < 0: report only, no gate.
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--timeseries") {
      series_path = next("--timeseries");
    } else if (arg == "--series") {
      series_name = next("--series");
    } else if (arg == "--jain-threshold") {
      threshold = std::atof(next("--jain-threshold"));
    } else if (arg == "--require-convergence") {
      require_convergence = true;
    } else if (arg == "--perturbations") {
      perturbations = true;
    } else if (arg == "--max-reconvergence-ms") {
      perturbations = true;
      max_reconvergence_ms = std::atof(next("--max-reconvergence-ms"));
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: trace_stats [--trace chrome.json] [--timeseries points.jsonl]\n"
          "                   [--series NAME] [--jain-threshold X]\n"
          "                   [--require-convergence] [--perturbations]\n"
          "                   [--max-reconvergence-ms X] [--self-test]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (self_test) {
    return airfair::analyze::TraceStatsSelfTest(std::cout) == 0 ? 0 : 1;
  }
  if (trace_path.empty() && series_path.empty()) {
    std::fprintf(stderr, "nothing to do: pass --trace and/or --timeseries (see --help)\n");
    return 2;
  }

  int exit_code = 0;
  if (!trace_path.empty()) {
    airfair::analyze::TraceStats stats;
    std::string error;
    if (!airfair::analyze::LoadChromeTrace(trace_path, &stats, &error)) {
      std::fprintf(stderr, "trace_stats: %s\n", error.c_str());
      return 2;
    }
    airfair::analyze::PrintTraceReport(stats, std::cout);
  }
  if (!series_path.empty()) {
    airfair::analyze::TimeseriesData data;
    std::string error;
    if (!airfair::analyze::LoadTimeseriesJsonl(series_path, &data, &error)) {
      std::fprintf(stderr, "trace_stats: %s\n", error.c_str());
      return 2;
    }
    airfair::analyze::PrintTimeseriesReport(data, series_name, threshold, std::cout);
    if (require_convergence &&
        airfair::analyze::ConvergenceTimeUs(data, series_name, threshold) < 0) {
      std::fprintf(stderr, "trace_stats: required convergence not reached\n");
      exit_code = 1;
    }
    if (perturbations) {
      airfair::analyze::PrintPerturbationReport(data, series_name, threshold, std::cout);
      if (max_reconvergence_ms >= 0) {
        const auto results =
            airfair::analyze::PerturbationReconvergence(data, series_name, threshold);
        if (results.empty()) {
          // A gated run with no marks means the fault schedule never fired:
          // that is a broken run, not a trivially-passing one.
          std::fprintf(stderr, "trace_stats: no perturbation marks to gate on\n");
          exit_code = 1;
        }
        const int64_t max_us = static_cast<int64_t>(max_reconvergence_ms * 1000.0);
        for (const auto& r : results) {
          if (r.reconvergence_us < 0 || r.reconvergence_us > max_us) {
            // An empty segment (a mark with no samples after it) is a
            // different failure from a populated segment that never recovers:
            // the former means the run ended before recovery was measurable.
            const char* diagnosis =
                r.reconvergence_us >= 0 ? "reconverged too slowly"
                : r.segment_samples == 0
                    ? "has no samples after the mark (reconvergence unmeasurable)"
                    : "never reconverged";
            std::fprintf(stderr,
                         "trace_stats: perturbation at t=%lldus %s (limit %.0fms)\n",
                         static_cast<long long>(r.mark_us), diagnosis,
                         max_reconvergence_ms);
            exit_code = 1;
          }
        }
      }
    }
  }
  return exit_code;
}

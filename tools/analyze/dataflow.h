// Forward dataflow over the per-function CFGs (tools/analyze/cfg.h).
//
// The flow-sensitive lint rules are all instances of one shape: walk every
// execution path through a function, tracking a small per-variable state
// machine (moved-from? handle retained?), and report statements reached in a
// bad state. This module provides that shape once: a worklist solver that
// joins predecessor states at block entries (may = max over the lattice,
// must = min), runs a rule-supplied transfer function across each block, and
// iterates to a fixpoint (loops converge because transfer functions are
// monotone over a finite lattice; a hard iteration cap backstops a rule that
// is not). After the fixpoint, the solver replays each *reachable* block and
// hands the rule every statement together with the state holding just before
// it — unreachable code gets no callbacks and therefore no findings.
//
// State is a map from variable name to a small integer lattice value; absent
// means 0 (the rule's bottom). Rules define their own value meanings, e.g.
// use-after-move uses {0: untracked/valid, 1: maybe-moved, 2: moved}: the
// may-join (max) makes a variable moved on *any* incoming path count, which
// is exactly the "used on any path after the move" semantics the rule wants.

#ifndef AIRFAIR_TOOLS_ANALYZE_DATAFLOW_H_
#define AIRFAIR_TOOLS_ANALYZE_DATAFLOW_H_

#include <functional>
#include <map>
#include <string>

#include "tools/analyze/cfg.h"

namespace airfair {
namespace analyze {

// Per-variable abstract state. Absent key == 0.
using VarState = std::map<std::string, int>;

enum class JoinKind {
  kMay,   // Join = max: a property that holds on ANY incoming path holds.
  kMust,  // Join = min: a property must hold on EVERY incoming path.
};

// Mutates `state` with the effect of one statement.
using TransferFn = std::function<void(const CfgStmt& stmt, VarState* state)>;

// Called after the fixpoint for every statement of every reachable block, in
// block-id then statement order, with the state just BEFORE the statement.
using VisitFn = std::function<void(const CfgStmt& stmt, const VarState& before)>;

// Solves the forward problem on `cfg` starting from `entry_state` at the
// entry block, then replays reachable blocks through `visit`. `visit` may be
// null when only `ExitState` matters.
class ForwardDataflow {
 public:
  ForwardDataflow(const FunctionCfg& cfg, JoinKind join, TransferFn transfer);

  void Solve(const VarState& entry_state);
  void Visit(const VisitFn& visit) const;

  // Joined state at the synthetic exit block (state when the function
  // returns, over all paths). Empty if the exit was never reached.
  const VarState& ExitState() const;
  bool ExitReached() const;

 private:
  const FunctionCfg& cfg_;
  JoinKind join_;
  TransferFn transfer_;
  std::map<int, VarState> in_states_;  // Only reachable blocks have entries.
};

// Joins `from` into `*into` under `join`; returns true if `*into` changed.
bool JoinInto(VarState* into, const VarState& from, JoinKind join);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_DATAFLOW_H_

// Minimal JSON value + recursive-descent parser shared by the vendored
// analysis tools (bench_diff, trace_stats). Null/bool/number/string/array/
// object; numbers become double. Just enough for the repo's own artifact
// formats — not a general-purpose JSON library.

#ifndef AIRFAIR_TOOLS_ANALYZE_JSON_H_
#define AIRFAIR_TOOLS_ANALYZE_JSON_H_

#include <map>
#include <string>
#include <vector>

namespace airfair {
namespace analyze {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

// Parses `text` as one complete JSON document. Returns false with *error
// set (including the byte offset) on malformed or trailing input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// `object[key]` as a number, or `fallback` when absent / not a number.
double NumberOr(const JsonValue& object, const std::string& key, double fallback);

// `object[key]` as a string, or `fallback` when absent / not a string.
std::string StringOr(const JsonValue& object, const std::string& key,
                     const std::string& fallback);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_JSON_H_

// CLI for the perf-regression gate (tools/analyze/bench_diff.h).
//
// Usage: bench_diff --baseline FILE --candidate FILE
//                   [--events-tol F] [--ratio-tol F] [--pool-tol F]
//                   [--time-tol F] [--require-all] [--verbose]
// Exit codes: 0 within tolerance, 1 regression, 2 usage/parse error.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "tools/analyze/bench_diff.h"

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  airfair::analyze::DiffOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--candidate") {
      candidate_path = next();
    } else if (arg == "--events-tol") {
      options.events_tolerance = std::atof(next());
    } else if (arg == "--ratio-tol") {
      options.ratio_tolerance = std::atof(next());
    } else if (arg == "--pool-tol") {
      options.pool_tolerance = std::atof(next());
    } else if (arg == "--time-tol") {
      options.time_tolerance = std::atof(next());
    } else if (arg == "--require-all") {
      options.require_all = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_diff --baseline FILE --candidate FILE [--events-tol F] "
          "[--ratio-tol F] [--pool-tol F] [--time-tol F] [--require-all] [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr, "bench_diff: --baseline and --candidate are required\n");
    return 2;
  }

  airfair::analyze::BenchRecords baseline;
  airfair::analyze::BenchRecords candidate;
  std::string error;
  if (!airfair::analyze::LoadBenchFile(baseline_path, &baseline, &error) ||
      !airfair::analyze::LoadBenchFile(candidate_path, &candidate, &error)) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }

  const airfair::analyze::DiffResult result =
      airfair::analyze::DiffBenchRecords(baseline, candidate, options);
  for (const auto& entry : result.entries) {
    if (entry.regression || verbose) {
      std::printf("%s\n", entry.ToString().c_str());
    }
  }
  for (const auto& name : result.missing) {
    std::fprintf(stderr, "bench_diff: baseline bench '%s' missing from candidate%s\n",
                 name.c_str(), options.require_all ? " (fatal)" : "");
  }
  std::fprintf(stderr, "bench_diff: %zu metric(s) compared, %d regression(s)\n",
               result.entries.size(), result.regressions);
  return result.ok ? 0 : 1;
}

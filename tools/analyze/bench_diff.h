// bench_diff: the perf-regression gate over the repo's bench JSON records.
//
// The bench harnesses emit two formats:
//   * JSONL perf records (bench_util.h, AIRFAIR_BENCH_JSON=path): one object
//     per line with events_per_wall_sec, sim_wall_ratio and packet-pool
//     tallies — the checked-in BENCH_figs.json baseline;
//   * google-benchmark --benchmark_format=json output: a top-level object
//     with a "benchmarks" array — the checked-in BENCH_hotpaths.json
//     baseline.
//
// bench_diff parses both (auto-detected), normalises them to named metric
// sets, and compares a candidate run against a baseline with per-metric
// tolerance bands:
//   events_per_wall_sec  higher is better, relative tolerance (default 25%)
//   sim_wall_ratio       higher is better, relative tolerance (default 35%)
//   pooled_frac          packets_pooled / (packets_pooled + packets_heap),
//                        higher is better, absolute tolerance (default 0.05)
//   real_time            google-benchmark ns/iter, lower is better,
//                        relative tolerance (default 35%)
//
// Appending runs to one JSONL file is the normal workflow, so the *last*
// record per bench name wins. Benches present only in the candidate are
// ignored (new benchmarks are not regressions); benches missing from the
// candidate are reported and fail the diff under require_all.
//
// Exit codes (binary): 0 within tolerance, 1 regression, 2 usage/parse
// error. A baseline diffed against itself always passes.

#ifndef AIRFAIR_TOOLS_ANALYZE_BENCH_DIFF_H_
#define AIRFAIR_TOOLS_ANALYZE_BENCH_DIFF_H_

#include <map>
#include <string>
#include <vector>

namespace airfair {
namespace analyze {

// One named benchmark's metrics: metric id -> value.
using MetricMap = std::map<std::string, double>;

// name -> metrics, last record per name wins.
using BenchRecords = std::map<std::string, MetricMap>;

// Parses either supported format from `text`. Returns false (with *error
// set) on malformed input.
bool ParseBenchRecords(const std::string& text, BenchRecords* records, std::string* error);

// Reads and parses `path`. Returns false with *error on I/O or parse error.
bool LoadBenchFile(const std::string& path, BenchRecords* records, std::string* error);

struct DiffOptions {
  double events_tolerance = 0.25;     // Relative, events_per_wall_sec.
  double ratio_tolerance = 0.35;      // Relative, sim_wall_ratio.
  double pool_tolerance = 0.05;       // Absolute, pooled_frac.
  double time_tolerance = 0.35;       // Relative, real_time (lower better).
  bool require_all = false;           // Baseline benches must all be present.
};

struct DiffEntry {
  std::string bench;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double change = 0.0;  // Signed relative (or absolute for pooled_frac).
  bool regression = false;
  std::string ToString() const;
};

struct DiffResult {
  std::vector<DiffEntry> entries;          // Every compared metric.
  std::vector<std::string> missing;        // Baseline benches absent from candidate.
  int regressions = 0;
  bool ok = true;  // No regressions (and no missing benches under require_all).
};

DiffResult DiffBenchRecords(const BenchRecords& baseline, const BenchRecords& candidate,
                            const DiffOptions& options);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_BENCH_DIFF_H_

// airfair_lint: the project's vendored offline static checker.
//
// CI runs clang-tidy, but the local container has no LLVM tools, so the
// project-specific rules — the ones that keep the simulator's hot paths
// allocation-free and its components wired into the invariant auditor —
// are enforced by this self-contained engine instead. It is a lexer-level
// analyzer, not a compiler, and runs in two passes: pass 1 strips comments
// and string literals with a real lexer state machine and builds a
// tree-wide symbol index (tools/analyze/symbol_index.h — classes, members,
// annotations, lock acquisitions); pass 2 runs the rules over the code
// text, the include lists, the cross-file structure and the index.
//
// Rules (ids are stable; they feed suppressions and CI output):
//   hot-std-function    std::function in src/{sim,mac,core,aqm,net} — use
//                       util::FunctionRef (non-owning hooks) or
//                       util::InlineFunction (owned callbacks)
//   hot-naked-new       naked new/delete in hot dirs — use containers,
//                       unique_ptr or the packet pool
//   hot-shared-ptr      shared_ptr in hot dirs (event/packet paths move
//                       unique ownership instead of refcounting)
//   no-const-cast       const_cast in hot dirs
//   mutable-static      function-local / namespace-scope mutable static in
//                       hot dirs (hidden cross-run state, data races)
//   trace-macro-discipline
//                       direct TraceBuffer / CurrentTraceBuffer use in hot
//                       dirs — trace through the AF_TRACE_* macros, which
//                       compile out with AIRFAIR_TRACE off
//   use-af-check        assert()/<cassert> in src/ — AF_CHECK/AF_DCHECK
//                       carry messages and honor the failure handler
//   include-self-first  a .cc file's first include must be its own header
//   no-bits-include     #include <bits/...> is libstdc++-internal
//   iwyu-lite           curated symbol→header map: used symbols must be
//                       covered by the file's includes or its paired
//                       header's includes
//   header-guard        headers carry the canonical AIRFAIR_<PATH>_ guard
//   core-needs-test     every src/core and src/aqm .cc has a test in
//                       tests/ including its header
//   audit-registration  a hot-dir header declaring CheckInvariants must be
//                       registered with the auditor somewhere (AddCheck /
//                       RegisterAudits), directly or by delegation
//   no-using-namespace  using namespace in headers
//   guarded-field-discipline
//                       mutex/atomic/mutable-static members and statics in
//                       src/ must declare their concurrency discipline:
//                       raw std::mutex -> the annotated Mutex wrapper
//                       (src/util/mutex.h); atomics and mutable statics ->
//                       AF_GUARDED_BY / AF_ATOMIC
//                       (src/util/thread_annotations.h). thread_local and
//                       const are exempt; a Mutex is its own capability
//   domain-crossing     types declared in src/{sim,core,aqm,mac,net} are
//                       event-loop-domain; thread-entry TUs (std::thread
//                       spawners, the parallel runner) may not name them
//                       except via tools/analyze/domain_gateways.txt, and
//                       domain TUs may not spawn threads. TUs declaring a
//                       whitelisted gateway type are the boundary itself
//                       and exempt in both directions
//   shard-gateway-discipline
//                       component TUs in src/{core,mac,aqm,net} may not
//                       name shard machinery types (*Shard* types declared
//                       under src/sim); cross-domain work goes through
//                       Simulation::PostCross* — the mailbox gateway
//   lock-order          RAII lock acquisitions must nest in the order
//                       declared in tools/analyze/lock_order.txt
//                       (outermost first); re-acquiring a held lock is
//                       flagged too
//
// Flow-sensitive rules (per-function CFGs — tools/analyze/cfg.h — with
// forward may/must dataflow — tools/analyze/dataflow.h):
//   use-after-move      a moved-from PacketPtr / EventFn / InlineFunction /
//                       std::unique_ptr local used on any path before
//                       reassignment/.reset() (src/ only; null checks of
//                       the guaranteed-null moved-from pointers are fine)
//   guarded-field-path  an AF_GUARDED_BY field touched on a path where the
//                       guard's MutexLock RAII scope has ended or was never
//                       entered and no AF_REQUIRES covers the function
//   callback-lifetime   a lambda capturing `this` (or by-reference state)
//                       passed to the detached Post*/PostCross* in
//                       src/{sim,mac,core,aqm,net,obs}, or a Schedule*/At/
//                       After handle for such a lambda dropped on some path
//                       instead of being stored/returned/passed on
//   unused-result       a full-statement call to an AF_NODISCARD function
//                       (EventLoop::Schedule*, Simulation::At/After,
//                       PacketPool::Allocate) whose result is discarded;
//                       (void)-cast is the sanctioned explicit discard
//
// Suppressions: `// airfair-lint: allow(rule-id): reason` on the flagged
// line or the line directly above it. File-scope rules (header-guard,
// include-self-first, core-needs-test, audit-registration) accept the
// suppression anywhere in the file. Multiple ids: allow(rule-a, rule-b).

#ifndef AIRFAIR_TOOLS_ANALYZE_LINT_H_
#define AIRFAIR_TOOLS_ANALYZE_LINT_H_

#include <string>
#include <vector>

namespace airfair {
namespace analyze {

struct LintFinding {
  std::string rule;
  std::string file;  // Repo-relative path, forward slashes.
  int line = 0;      // 1-based; 0 for file-scope findings.
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

// The registered rule set, in stable order.
std::vector<RuleInfo> AllRules();

struct LintOptions {
  // Repo root; relative `roots` entries and cross-file lookups (tests/
  // coverage) resolve against it.
  std::string repo_root = ".";
  // Files or directories to lint, relative to repo_root (directories are
  // walked recursively for .h/.cc, skipping build output).
  std::vector<std::string> roots;
  // Declared lock hierarchy (outermost first) for the lock-order rule and
  // gateway whitelist for the domain-crossing rule, relative to repo_root.
  // With the hierarchy file absent, lock-order still flags re-acquisition
  // of a held lock but skips ordering checks; an absent gateway file means
  // an empty whitelist.
  std::string lock_order_file = "tools/analyze/lock_order.txt";
  std::string gateway_file = "tools/analyze/domain_gateways.txt";
};

struct LintResult {
  std::vector<LintFinding> findings;
  int files_scanned = 0;
};

// Runs every rule over the requested tree. Findings are sorted by
// (file, line, rule) and already have suppressions applied.
LintResult RunLint(const LintOptions& options);

// Machine-readable output: {"files_scanned":N,"findings":[...]}.
std::string ResultToJson(const LintResult& result);

// Strips //- and /**/-comments and the contents of string/char literals
// (lexer state carries across lines via `in_block_comment`). Exposed for
// tests; the quotes themselves are kept so tokens do not merge.
std::string StripCodeLine(const std::string& line, bool* in_block_comment);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_LINT_H_

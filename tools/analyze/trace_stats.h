// trace_stats: post-run analysis over the observability artifacts that the
// Testbed exports (src/obs/export.h):
//
//   * Chrome trace JSON (AIRFAIR_TRACE_JSON) — per-stage latency breakdown:
//     queueing (dequeue-instant sojourn times), air (tx slice durations) and
//     end-to-end (deliver-instant latencies), per-station tx airtime totals,
//     and drop/collision tallies;
//   * timeseries JSONL (AIRFAIR_TIMESERIES_JSON) — airtime-fairness
//     convergence time: the earliest sample after which the windowed Jain
//     index stays at or above a threshold for the remainder of the run
//     (the temporal claim behind the paper's Figs. 5 and 9).
//
// Used by CI's perf-smoke job to prove that a traced figure run produced
// loadable artifacts and that the airtime-fair scheme converges; the parse
// and analysis entry points are a library (linked into airfair_analyze) so
// tests/tools_trace_stats_test.cc can exercise them on synthetic inputs.

#ifndef AIRFAIR_TOOLS_ANALYZE_TRACE_STATS_H_
#define AIRFAIR_TOOLS_ANALYZE_TRACE_STATS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace airfair {
namespace analyze {

// Aggregates extracted from one Chrome trace JSON file.
struct TraceStats {
  int64_t events = 0;  // trace_event objects seen (metadata included).

  // Per-stage latency samples, microseconds.
  std::vector<double> sojourn_us;  // "dequeue" instants: time queued.
  std::vector<double> tx_us;       // "tx" complete slices: time on air.
  std::vector<double> latency_us;  // "deliver" instants: end to end.

  // Per-station airtime from tx slices: station tid -> summed slice dur.
  std::map<int, double> tx_airtime_us;
  std::map<int, int64_t> tx_slices;

  // Event tallies.
  int64_t codel_drops = 0;
  int64_t overflow_drops = 0;
  int64_t duplicate_drops = 0;
  int64_t collisions = 0;
};

// Parses Chrome trace JSON text ({"traceEvents":[...]}); false + *error on
// malformed input (a missing traceEvents array is malformed).
bool ParseChromeTrace(const std::string& text, TraceStats* stats, std::string* error);
bool LoadChromeTrace(const std::string& path, TraceStats* stats, std::string* error);

// One timeseries file: series name -> (t_us, value) points in file order.
struct TimeseriesData {
  std::map<std::string, std::vector<std::pair<int64_t, double>>> series;
  int64_t points = 0;
};

// Parses timeseries JSONL text; false + *error on a malformed line.
bool ParseTimeseriesJsonl(const std::string& text, TimeseriesData* data, std::string* error);
bool LoadTimeseriesJsonl(const std::string& path, TimeseriesData* data, std::string* error);

// The convergence time of `series_name`: the earliest sample time t such
// that every sample from t to the end of the series has value >= threshold.
// Returns -1 when the series is absent, empty, or never converges (the
// last sample is below the threshold).
int64_t ConvergenceTimeUs(const TimeseriesData& data, const std::string& series_name,
                          double threshold);

// Quantile with linear interpolation over an unsorted sample vector (sorts
// a copy); 0 on empty.
double SampleQuantile(std::vector<double> samples, double q);

// The series the fault injector (src/fault) writes its perturbation marks
// into: one point per perturbation instant, value = 1-based FaultKind code.
inline const char* kPerturbationSeries = "perturbation";

// One perturbation mark and the measured recovery that followed it.
struct ReconvergenceResult {
  int64_t mark_us = 0;
  double kind_code = 0.0;            // Value recorded at the mark.
  int64_t reconverged_at_us = -1;    // -1: never within this mark's segment.
  int64_t reconvergence_us = -1;     // reconverged_at_us - mark_us.
  // Samples of the analyzed series inside this mark's segment. 0 means the
  // mark landed after the last sample (e.g. a scheduled fault firing at the
  // very end of the run): reconvergence is *unmeasurable*, which is a
  // different diagnosis from a populated segment that ends below the
  // threshold (a real non-recovery). Both report reconverged_at_us == -1;
  // consumers that gate on reconvergence should distinguish them by this
  // count rather than report a bogus "never reconverged".
  int64_t segment_samples = 0;
};

// Per-perturbation reconvergence of `series_name` (typically airtime_jain):
// each mark in the "perturbation" series owns the segment strictly between
// the mark and the next mark (or the end of the series for the last mark);
// samples at a mark instant already reflect that mark's perturbation and
// belong to no segment. Within its segment, a mark's reconvergence
// point is the start of the final run of samples that all sit at or above
// `threshold` and reach the segment end — the same tail-run definition
// ConvergenceTimeUs uses for the whole series, restricted to the segment.
// Marks whose segment is empty or whose last sample is below the threshold
// report -1 (not reconverged); `segment_samples` tells the two apart.
std::vector<ReconvergenceResult> PerturbationReconvergence(const TimeseriesData& data,
                                                           const std::string& series_name,
                                                           double threshold);

// Human-readable reports (what the CLI prints).
void PrintTraceReport(const TraceStats& stats, std::ostream& out);
void PrintTimeseriesReport(const TimeseriesData& data, const std::string& series_name,
                           double threshold, std::ostream& out);
void PrintPerturbationReport(const TimeseriesData& data, const std::string& series_name,
                             double threshold, std::ostream& out);

// Built-in self-test over synthetic artifacts (ctest trace_stats_selftest):
// returns the number of failed expectations, printing each to `out`.
int TraceStatsSelfTest(std::ostream& out);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_TRACE_STATS_H_

#include "tools/analyze/dataflow.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

namespace airfair {
namespace analyze {

bool JoinInto(VarState* into, const VarState& from, JoinKind join) {
  bool changed = false;
  if (join == JoinKind::kMay) {
    // max, absent == 0: only keys present in `from` can raise `into`.
    for (const auto& [var, value] : from) {
      auto [it, inserted] = into->emplace(var, value);
      if (inserted) {
        changed = changed || value != 0;
      } else if (value > it->second) {
        it->second = value;
        changed = true;
      }
    }
    return changed;
  }
  // must: min, absent == 0 — a key missing on one side drags the other to 0.
  for (auto& [var, value] : *into) {
    const auto it = from.find(var);
    const int incoming = it == from.end() ? 0 : it->second;
    if (incoming < value) {
      value = incoming;
      changed = true;
    }
  }
  // Keys only in `from` join with absent (0) in `into`: min is 0, and
  // absent already means 0, so nothing to add.
  return changed;
}

ForwardDataflow::ForwardDataflow(const FunctionCfg& cfg, JoinKind join, TransferFn transfer)
    : cfg_(cfg), join_(join), transfer_(std::move(transfer)) {}

void ForwardDataflow::Solve(const VarState& entry_state) {
  in_states_.clear();
  if (cfg_.blocks.empty()) return;
  in_states_[cfg_.entry] = entry_state;
  std::deque<int> worklist{cfg_.entry};
  std::set<int> queued{cfg_.entry};
  // Monotone transfers over a finite lattice converge well before this; the
  // cap only guards a buggy non-monotone rule from spinning.
  int budget = static_cast<int>(cfg_.blocks.size()) * 64 + 256;
  while (!worklist.empty() && budget-- > 0) {
    const int id = worklist.front();
    worklist.pop_front();
    queued.erase(id);
    if (id < 0 || static_cast<size_t>(id) >= cfg_.blocks.size()) continue;
    const CfgBlock& block = cfg_.blocks[static_cast<size_t>(id)];
    VarState state = in_states_[id];
    for (const CfgStmt& stmt : block.stmts) transfer_(stmt, &state);
    for (const int succ : block.succs) {
      const auto it = in_states_.find(succ);
      bool changed;
      if (it == in_states_.end()) {
        in_states_[succ] = state;
        changed = true;
      } else {
        changed = JoinInto(&it->second, state, join_);
      }
      if (changed && queued.insert(succ).second) worklist.push_back(succ);
    }
  }
}

void ForwardDataflow::Visit(const VisitFn& visit) const {
  if (!visit) return;
  for (const CfgBlock& block : cfg_.blocks) {
    const auto it = in_states_.find(block.id);
    if (it == in_states_.end()) continue;  // Unreachable: no findings.
    VarState state = it->second;
    for (const CfgStmt& stmt : block.stmts) {
      visit(stmt, state);
      transfer_(stmt, &state);
    }
  }
}

const VarState& ForwardDataflow::ExitState() const {
  static const VarState kEmpty;
  const auto it = in_states_.find(cfg_.exit);
  return it == in_states_.end() ? kEmpty : it->second;
}

bool ForwardDataflow::ExitReached() const {
  return in_states_.find(cfg_.exit) != in_states_.end();
}

}  // namespace analyze
}  // namespace airfair

#include "tools/analyze/cfg.h"

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace airfair {
namespace analyze {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdent(const std::string& s) {
  return !s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) != 0 || s[0] == '_');
}

struct Token {
  std::string text;
  int line = 0;  // 1-based.
};

// Multi-character operators that must stay one token ("::" in particular —
// the parser distinguishes it from the ':' of labels and init lists).
const char* kMultiOps[] = {"->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<",
                           ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
                           "*=", "/=", "%=", "&=", "|=", "^="};

// Tokenizes stripped code lines. Preprocessor lines are skipped wholesale:
// their brace structure is conditional and would desynchronise the parser.
std::vector<Token> Tokenize(const std::vector<std::string>& code) {
  std::vector<Token> out;
  for (size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    const int line_no = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) != 0) ++i;
    if (i < line.size() && line[i] == '#') continue;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (IsIdentChar(c)) {
        const size_t start = i;
        while (i < line.size() && IsIdentChar(line[i])) ++i;
        out.push_back(Token{line.substr(start, i - start), line_no});
        continue;
      }
      bool matched = false;
      for (const char* op : kMultiOps) {
        const size_t len = std::string(op).size();
        if (line.compare(i, len, op) == 0) {
          out.push_back(Token{op, line_no});
          i += len;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      out.push_back(Token{std::string(1, c), line_no});
      ++i;
    }
  }
  return out;
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" || s == "catch" ||
         s == "return" || s == "do" || s == "else" || s == "case" || s == "sizeof" ||
         s == "new" || s == "delete";
}

// The RAII scoped-lock spellings the held-lock annotation recognises; the
// project locks through these only (symbol_index.h documents the same
// contract for the lock-order rule).
const char* kLockGuards[] = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"};

// If the statement tokens declare an RAII lock guard variable
// ("MutexLock lock ( & mu_ )", "std :: lock_guard < std :: mutex > l ( m )"),
// returns the guarded lock's name (last identifier of the first constructor
// argument); "" otherwise.
std::string LockGuardTarget(const std::vector<Token>& toks, size_t begin, size_t end) {
  size_t i = begin;
  bool is_guard = false;
  // The guard type must appear before the variable name — scan the first
  // few tokens only so a *use* of a guard type deeper in an expression does
  // not count as a declaration.
  for (size_t k = i; k < end && k < i + 6; ++k) {
    for (const char* g : kLockGuards) {
      if (toks[k].text == g) {
        is_guard = true;
        i = k + 1;
        break;
      }
    }
    if (is_guard) break;
  }
  if (!is_guard) return "";
  // Skip a template argument list.
  if (i < end && toks[i].text == "<") {
    int angle = 0;
    while (i < end) {
      if (toks[i].text == "<") ++angle;
      if (toks[i].text == ">" && --angle == 0) {
        ++i;
        break;
      }
      ++i;
    }
  }
  // Variable name, then '(' — "MutexLock(" (a constructor) and
  // "MutexLock l;" (deferred) declare nothing held here.
  if (i >= end || !IsIdent(toks[i].text)) return "";
  ++i;
  if (i >= end || toks[i].text != "(") return "";
  ++i;
  std::string name;
  int paren = 1;
  while (i < end && paren > 0) {
    if (toks[i].text == "(") ++paren;
    if (toks[i].text == ")") --paren;
    if (paren == 1 && toks[i].text == ",") break;  // First argument only.
    if (paren >= 1 && IsIdent(toks[i].text)) name = toks[i].text;
    ++i;
  }
  return name;
}

// ---------------------------------------------------------------------------
// Statement parser: tokens of one function body -> basic blocks.
// ---------------------------------------------------------------------------

class BodyParser {
 public:
  BodyParser(const std::vector<Token>& toks, size_t* pos, FunctionCfg* cfg)
      : toks_(toks), pos_(pos), cfg_(cfg) {
    cfg_->blocks.push_back(CfgBlock{0, {}, {}});  // Entry.
    cfg_->blocks.push_back(CfgBlock{1, {}, {}});  // Exit.
    cfg_->entry = 0;
    cfg_->exit = 1;
    cur_ = 0;
  }

  // Parses the compound statement at *pos_ (expects '{').
  void Run() {
    ParseCompound();
    if (cur_ != -1) Edge(cur_, cfg_->exit);
  }

 private:
  bool AtEnd() const { return *pos_ >= toks_.size(); }
  const Token& Peek() const { return toks_[*pos_]; }
  const std::string& PeekText() const { return toks_[*pos_].text; }
  Token Next() { return toks_[(*pos_)++]; }
  bool Accept(const char* t) {
    if (!AtEnd() && PeekText() == t) {
      ++*pos_;
      return true;
    }
    return false;
  }

  int NewBlock() {
    const int id = static_cast<int>(cfg_->blocks.size());
    cfg_->blocks.push_back(CfgBlock{id, {}, {}});
    return id;
  }

  void Edge(int from, int to) {
    if (from < 0 || to < 0) return;
    for (const int s : cfg_->blocks[static_cast<size_t>(from)].succs) {
      if (s == to) return;
    }
    cfg_->blocks[static_cast<size_t>(from)].succs.push_back(to);
  }

  // The current block, materialising an unreachable one after a
  // return/break/continue so parsing (and scope tracking) can continue.
  int Cur() {
    if (cur_ == -1) cur_ = NewBlock();
    return cur_;
  }

  void Append(std::string text, int line, bool is_return = false) {
    CfgStmt stmt;
    stmt.text = std::move(text);
    stmt.line = line;
    stmt.held_locks = lock_stack_;
    stmt.is_return = is_return;
    cfg_->blocks[static_cast<size_t>(Cur())].stmts.push_back(std::move(stmt));
  }

  // Consumes a balanced (...) / {...} / [...] group, appending its tokens
  // (including the delimiters) to `out`. Assumes the opener is at *pos_.
  void ConsumeBalanced(std::string* out) {
    const std::string open = PeekText();
    const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    while (!AtEnd()) {
      const Token t = Next();
      if (out != nullptr) {
        if (!out->empty()) *out += ' ';
        *out += t.text;
      }
      if (t.text == open) ++depth;
      if (t.text == close && --depth == 0) return;
    }
  }

  void ParseCompound() {
    if (!Accept("{")) return;
    const size_t mark = lock_stack_.size();
    while (!AtEnd() && PeekText() != "}") {
      ParseStatement();
    }
    Accept("}");
    lock_stack_.resize(mark);  // RAII: scope end releases its locks.
  }

  void ParseStatement() {
    if (AtEnd()) return;
    const std::string& t = PeekText();
    if (t == "{") {
      ParseCompound();
      return;
    }
    if (t == ";") {
      Next();
      return;
    }
    if (t == "if") {
      ParseIf();
      return;
    }
    if (t == "while") {
      ParseWhile();
      return;
    }
    if (t == "do") {
      ParseDoWhile();
      return;
    }
    if (t == "for") {
      ParseFor();
      return;
    }
    if (t == "switch") {
      ParseSwitch();
      return;
    }
    if (t == "return") {
      ParseReturn();
      return;
    }
    if (t == "break" || t == "continue") {
      const Token kw = Next();
      Accept(";");
      Append(kw.text + " ;", kw.line);
      const std::vector<int>& stack = kw.text == "break" ? break_stack_ : continue_stack_;
      if (!stack.empty()) Edge(Cur(), stack.back());
      cur_ = -1;
      return;
    }
    if (t == "try") {
      ParseTry();
      return;
    }
    ParseExprStatement();
  }

  // Collects "( ... )" after a control keyword into `out` (without parsing
  // lambdas — control conditions do not define lambdas in this code base).
  void ConsumeParens(std::string* out) {
    if (!AtEnd() && PeekText() == "(") ConsumeBalanced(out);
  }

  void ParseIf() {
    const Token kw = Next();  // if
    Accept("constexpr");
    std::string cond;
    ConsumeParens(&cond);
    Append("if " + cond, kw.line);
    const int cond_block = Cur();
    const int then_block = NewBlock();
    Edge(cond_block, then_block);
    cur_ = then_block;
    ParseStatement();
    const int end_then = cur_;
    if (!AtEnd() && PeekText() == "else") {
      Next();
      const int else_block = NewBlock();
      Edge(cond_block, else_block);
      cur_ = else_block;
      ParseStatement();
      const int end_else = cur_;
      const int join = NewBlock();
      Edge(end_then, join);
      Edge(end_else, join);
      cur_ = (end_then == -1 && end_else == -1) ? -1 : join;
      return;
    }
    const int join = NewBlock();
    Edge(cond_block, join);
    Edge(end_then, join);
    cur_ = join;
  }

  void ParseWhile() {
    const Token kw = Next();  // while
    std::string cond;
    ConsumeParens(&cond);
    const int before = Cur();
    const int cond_block = NewBlock();
    Edge(before, cond_block);
    cur_ = cond_block;
    Append("while " + cond, kw.line);
    const int body = NewBlock();
    const int exit = NewBlock();
    Edge(cond_block, body);
    Edge(cond_block, exit);
    break_stack_.push_back(exit);
    continue_stack_.push_back(cond_block);
    cur_ = body;
    ParseStatement();
    Edge(cur_, cond_block);
    break_stack_.pop_back();
    continue_stack_.pop_back();
    cur_ = exit;
  }

  void ParseDoWhile() {
    const Token kw = Next();  // do
    const int before = Cur();
    const int body = NewBlock();
    Edge(before, body);
    const int cond_block = NewBlock();
    const int exit = NewBlock();
    break_stack_.push_back(exit);
    continue_stack_.push_back(cond_block);
    cur_ = body;
    ParseStatement();
    Edge(cur_, cond_block);
    break_stack_.pop_back();
    continue_stack_.pop_back();
    Accept("while");
    std::string cond;
    ConsumeParens(&cond);
    Accept(";");
    cur_ = cond_block;
    Append("do-while " + cond, kw.line);
    Edge(cond_block, body);  // Back edge.
    Edge(cond_block, exit);
    cur_ = exit;
  }

  void ParseFor() {
    const Token kw = Next();  // for
    std::string header;
    ConsumeParens(&header);
    const int before = Cur();
    const int head_block = NewBlock();
    Edge(before, head_block);
    cur_ = head_block;
    Append("for " + header, kw.line);
    const int body = NewBlock();
    const int exit = NewBlock();
    Edge(head_block, body);
    Edge(head_block, exit);
    break_stack_.push_back(exit);
    continue_stack_.push_back(head_block);
    cur_ = body;
    ParseStatement();
    Edge(cur_, head_block);  // Back edge (increment folded into the header).
    break_stack_.pop_back();
    continue_stack_.pop_back();
    cur_ = exit;
  }

  void ParseSwitch() {
    const Token kw = Next();  // switch
    std::string cond;
    ConsumeParens(&cond);
    Append("switch " + cond, kw.line);
    const int head = Cur();
    const int exit = NewBlock();
    if (!Accept("{")) {
      cur_ = exit;
      Edge(head, exit);
      return;
    }
    const size_t mark = lock_stack_.size();
    break_stack_.push_back(exit);
    bool seen_default = false;
    cur_ = -1;  // Code before the first label is unreachable.
    while (!AtEnd() && PeekText() != "}") {
      if (PeekText() == "case" || PeekText() == "default") {
        const bool is_default = PeekText() == "default";
        seen_default = seen_default || is_default;
        Next();
        // Consume the label expression up to the ':' (":: " stays one
        // token, so a plain ":" really ends the label).
        while (!AtEnd() && PeekText() != ":" && PeekText() != "{" && PeekText() != "}") Next();
        Accept(":");
        const int fallthrough_from = cur_;
        const int label_block = NewBlock();
        Edge(head, label_block);
        Edge(fallthrough_from, label_block);  // Fallthrough from the previous case.
        cur_ = label_block;
        continue;
      }
      ParseStatement();
    }
    Accept("}");
    lock_stack_.resize(mark);
    break_stack_.pop_back();
    Edge(cur_, exit);  // Fall off the last case.
    if (!seen_default) Edge(head, exit);
    cur_ = exit;
  }

  void ParseReturn() {
    const Token kw = Next();  // return
    std::string text = "return";
    CollectExprTokens(&text);
    Accept(";");
    text += " ;";
    Append(text, kw.line, /*is_return=*/true);
    Edge(Cur(), cfg_->exit);
    cur_ = -1;
  }

  void ParseTry() {
    Next();  // try
    const int before = Cur();
    ParseCompound();  // The try body runs inline on the normal path.
    const int after_try = cur_;
    std::vector<int> catch_ends;
    while (!AtEnd() && PeekText() == "catch") {
      Next();
      ConsumeParens(nullptr);
      const int catch_block = NewBlock();
      // Approximation: an exception may skip any part of the try body.
      Edge(before, catch_block);
      cur_ = catch_block;
      ParseCompound();
      catch_ends.push_back(cur_);
    }
    const int join = NewBlock();
    Edge(after_try, join);
    for (const int e : catch_ends) Edge(e, join);
    cur_ = join;
  }

  // Consumes expression tokens until ';' at depth 0, descending into lambda
  // bodies (each becomes a nested FunctionCfg; the enclosing text keeps the
  // capture list plus a `<lambda#k>` placeholder so capture-initializer
  // moves stay visible here while body statements do not).
  void CollectExprTokens(std::string* text) {
    std::string prev;
    while (!AtEnd()) {
      const std::string& t = PeekText();
      if (t == ";") return;
      if (t == "}") return;  // Unterminated statement at scope end.
      if (t == "(" || t == "{") {
        // A '{' mid-expression is a brace initialiser, member-init or
        // inline aggregate — swallow it balanced. Parens likewise (their
        // contents may hold lambdas: scan inside).
        ConsumeGroupWithLambdas(text, &prev);
        continue;
      }
      if (t == "[" && LambdaIntroAhead(prev)) {
        ParseLambda(text);
        prev = ">";  // Placeholder behaves like a closed expression.
        continue;
      }
      const Token tok = Next();
      if (!text->empty()) *text += ' ';
      *text += tok.text;
      prev = tok.text;
    }
  }

  // Consumes a balanced ( ) or { } group token by token so nested lambda
  // intros are still recognised and parsed out.
  void ConsumeGroupWithLambdas(std::string* text, std::string* prev) {
    const std::string open = PeekText();
    const std::string close = open == "(" ? ")" : "}";
    std::string last = *prev;
    int depth = 0;
    while (!AtEnd()) {
      const std::string& t = PeekText();
      if (t == "[" && depth > 0 && LambdaIntroAhead(last)) {
        ParseLambda(text);
        // Move-assign a temporary: GCC 12 emits a spurious -Wrestrict for
        // operator=(const char*) once this loop is inlined into callers.
        last = std::string(">");
        continue;
      }
      const Token tok = Next();
      if (!text->empty()) *text += ' ';
      *text += tok.text;
      last = tok.text;
      if (tok.text == open) ++depth;
      if (tok.text == close && --depth == 0) break;
    }
    *prev = last;
  }

  // '[' starts a lambda when the previous token cannot end a subscripted
  // expression, and the bracket group is followed by '(' or '{'.
  bool LambdaIntroAhead(const std::string& prev) const {
    if (IsIdent(prev) && !IsControlKeyword(prev)) return false;
    if (prev == "]" || prev == ")") return false;
    // Attributes [[...]] are not lambdas.
    if (*pos_ + 1 < toks_.size() && toks_[*pos_ + 1].text == "[") return false;
    // Find the matching ']' and peek behind it.
    size_t i = *pos_;
    int depth = 0;
    while (i < toks_.size()) {
      if (toks_[i].text == "[") ++depth;
      if (toks_[i].text == "]" && --depth == 0) break;
      ++i;
    }
    if (i + 1 >= toks_.size()) return false;
    const std::string& after = toks_[i + 1].text;
    return after == "(" || after == "{" || after == "mutable" || after == "->";
  }

  // Parses "[captures] (params) specifiers { body }" at *pos_ into a nested
  // FunctionCfg and appends "[captures] <lambda#k>" to the enclosing text.
  void ParseLambda(std::string* text) {
    Next();  // '['
    std::string captures;
    int depth = 1;
    while (!AtEnd()) {
      const Token tok = Next();
      if (tok.text == "[") ++depth;
      if (tok.text == "]" && --depth == 0) break;
      if (!captures.empty()) captures += ' ';
      captures += tok.text;
    }
    if (!AtEnd() && PeekText() == "(") ConsumeBalanced(nullptr);  // Parameters.
    // Specifiers (mutable, noexcept, -> Type) up to the body.
    while (!AtEnd() && PeekText() != "{" && PeekText() != ";") Next();
    FunctionCfg lambda;
    lambda.name = "<lambda>";
    lambda.captures = captures;
    lambda.head = "[" + captures + "]";
    lambda.line = AtEnd() ? 0 : Peek().line;
    if (!AtEnd() && PeekText() == "{") {
      BodyParser nested(toks_, pos_, &lambda);
      nested.Run();
    }
    const size_t k = cfg_->lambdas.size();
    cfg_->lambdas.push_back(std::move(lambda));
    if (!text->empty()) *text += ' ';
    *text += "[ " + captures + " ] <lambda#" + std::to_string(k) + ">";
  }

  void ParseExprStatement() {
    const Token first = Peek();
    std::string text;
    CollectExprTokens(&text);
    Accept(";");
    text += " ;";
    // RAII lock declaration: everything after it in this scope holds the
    // lock (until the enclosing compound pops it).
    std::vector<Token> stmt_toks;
    {
      // Re-tokenise the joined text cheaply for the guard matcher.
      std::istringstream in(text);
      std::string word;
      while (in >> word) stmt_toks.push_back(Token{word, first.line});
    }
    const std::string lock = LockGuardTarget(stmt_toks, 0, stmt_toks.size());
    Append(std::move(text), first.line);
    if (!lock.empty()) lock_stack_.push_back(lock);
  }

  const std::vector<Token>& toks_;
  size_t* pos_;
  FunctionCfg* cfg_;
  int cur_ = 0;
  std::vector<int> break_stack_;
  std::vector<int> continue_stack_;
  std::vector<std::string> lock_stack_;
};

// ---------------------------------------------------------------------------
// Function finder: scans the token stream for "declarator ( params ) ... {"
// heads and hands each body to the parser.
// ---------------------------------------------------------------------------

size_t MatchingParen(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

// Walks forward from the token after the parameter list's ')' over trailing
// specifiers / annotations / a constructor init list; returns the index of
// the body '{' or npos when this is not a function definition.
size_t FindBodyBrace(const std::vector<Token>& toks, size_t after_params) {
  size_t i = after_params;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "{") return i;
    if (t == ";" || t == "=" || t == "," || t == ")" || t == "(") return std::string::npos;
    if (t == ":") {
      // Constructor member-init list: Name(args) or Name{args}, separated
      // by commas, then the body brace.
      ++i;
      while (i < toks.size()) {
        // Initializer name with qualifiers / template args.
        while (i < toks.size() &&
               (IsIdent(toks[i].text) || toks[i].text == "::" || toks[i].text == "<" ||
                toks[i].text == ">" || toks[i].text == ",")) {
          // A ',' only separates initializers after a group; inside this
          // loop it can only appear within template args — tolerated.
          ++i;
        }
        if (i >= toks.size()) return std::string::npos;
        if (toks[i].text == "{") {
          // Either an init brace or the body. An init brace directly
          // follows an identifier or '>'.
          const std::string& prev = toks[i - 1].text;
          if (!IsIdent(prev) && prev != ">") return i;
        }
        if (toks[i].text != "(" && toks[i].text != "{") return std::string::npos;
        // Consume the balanced initializer group.
        const std::string open = toks[i].text;
        const std::string close = open == "(" ? ")" : "}";
        int depth = 0;
        while (i < toks.size()) {
          if (toks[i].text == open) ++depth;
          if (toks[i].text == close && --depth == 0) {
            ++i;
            break;
          }
          ++i;
        }
        if (i < toks.size() && toks[i].text == "{") return i;
        if (i < toks.size() && toks[i].text == ",") {
          ++i;
          continue;
        }
        return std::string::npos;
      }
      return std::string::npos;
    }
    // Trailing specifiers, annotation macros (with optional argument
    // lists), attributes, ref-qualifiers, trailing return types.
    if (t == "const" || t == "noexcept" || t == "override" || t == "final" || t == "mutable" ||
        t == "&" || t == "&&" || t == "->" || t == "*" || t == "::" || t == "<" || t == ">" ||
        IsIdent(t)) {
      ++i;
      if (i < toks.size() && toks[i].text == "(") {
        i = MatchingParen(toks, i) + 1;  // noexcept(...) / AF_REQUIRES(...).
      }
      continue;
    }
    if (t == "[") {  // [[nodiscard]]-style attribute.
      int depth = 0;
      while (i < toks.size()) {
        if (toks[i].text == "[") ++depth;
        if (toks[i].text == "]" && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

// Start of the declaration the name at `name_idx` belongs to: walk back to
// the previous statement/body boundary.
size_t DeclStart(const std::vector<Token>& toks, size_t name_idx) {
  size_t i = name_idx;
  while (i > 0) {
    const std::string& t = toks[i - 1].text;
    if (t == ";" || t == "{" || t == "}" || t == ":") break;
    --i;
  }
  return i;
}

std::string JoinTokens(const std::vector<Token>& toks, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (!out.empty()) out += ' ';
    out += toks[i].text;
  }
  return out;
}

}  // namespace

std::vector<FunctionCfg> BuildFileCfgs(const std::vector<std::string>& code) {
  const std::vector<Token> toks = Tokenize(code);
  std::vector<FunctionCfg> out;
  size_t i = 0;
  while (i < toks.size()) {
    if (toks[i].text != "(") {
      ++i;
      continue;
    }
    // Candidate parameter list: the token before must be a (non-control)
    // identifier, or an operator spelling ("operator ( )" / "operator ==").
    size_t name_idx = std::string::npos;
    std::string name;
    if (i > 0 && IsIdent(toks[i - 1].text) && !IsControlKeyword(toks[i - 1].text)) {
      name_idx = i - 1;
      name = toks[i - 1].text;
    } else if (i > 2 && toks[i - 1].text == ")" && toks[i - 2].text == "(" &&
               toks[i - 3].text == "operator") {
      name_idx = i - 3;
      name = "operator()";
    } else if (i > 1 && !IsIdent(toks[i - 1].text) && toks[i - 1].text != ")" &&
               toks[i - 1].text != "]" && i >= 2 && toks[i - 2].text == "operator") {
      name_idx = i - 2;
      name = "operator" + toks[i - 1].text;
    }
    if (name_idx == std::string::npos) {
      ++i;
      continue;
    }
    const size_t close = MatchingParen(toks, i);
    if (close >= toks.size()) {
      ++i;
      continue;
    }
    const size_t body = FindBodyBrace(toks, close + 1);
    if (body == std::string::npos) {
      ++i;
      continue;
    }
    FunctionCfg cfg;
    cfg.name = name;
    cfg.head = JoinTokens(toks, DeclStart(toks, name_idx), body);
    cfg.line = toks[body].line;
    size_t pos = body;
    BodyParser parser(toks, &pos, &cfg);
    parser.Run();
    out.push_back(std::move(cfg));
    i = pos;
  }
  return out;
}

std::string CfgToString(const FunctionCfg& cfg) {
  std::ostringstream out;
  out << cfg.name << " (line " << cfg.line << ")\n";
  for (const CfgBlock& b : cfg.blocks) {
    out << "  B" << b.id << " ->";
    for (const int s : b.succs) out << " B" << s;
    out << "\n";
    for (const CfgStmt& s : b.stmts) {
      out << "    [" << s.line << "] " << s.text;
      if (!s.held_locks.empty()) {
        out << "  {held:";
        for (const std::string& l : s.held_locks) out << " " << l;
        out << "}";
      }
      out << "\n";
    }
  }
  for (size_t k = 0; k < cfg.lambdas.size(); ++k) {
    out << "  lambda#" << k << ":\n" << CfgToString(cfg.lambdas[k]);
  }
  return out.str();
}

}  // namespace analyze
}  // namespace airfair

// CLI for the vendored lint engine (tools/analyze/lint.h).
//
// Usage: airfair_lint [--root DIR] [--json] [--list-rules] [paths...]
//   paths default to `src bench tests tools` relative to --root (default .).
// Exit codes: 0 clean, 1 findings, 2 usage error.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/analyze/lint.h"

int main(int argc, char** argv) {
  airfair::analyze::LintOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : airfair::analyze::AllRules()) {
        std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--root needs a directory\n");
        return 2;
      }
      options.repo_root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: airfair_lint [--root DIR] [--json] [--list-rules] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) {
    options.roots = {"src", "bench", "tests", "tools"};
  }

  const airfair::analyze::LintResult result = airfair::analyze::RunLint(options);
  if (json) {
    std::printf("%s\n", airfair::analyze::ResultToJson(result).c_str());
  } else {
    for (const auto& finding : result.findings) {
      std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line, finding.rule.c_str(),
                  finding.message.c_str());
    }
    std::fprintf(stderr, "airfair_lint: %zu finding(s) in %d file(s)\n", result.findings.size(),
                 result.files_scanned);
  }
  return result.findings.empty() ? 0 : 1;
}

// CLI for the vendored lint engine (tools/analyze/lint.h).
//
// Usage: airfair_lint [--root DIR] [--json] [--format=github] [--list-rules] [paths...]
//   paths default to `src bench tests tools` relative to --root (default .).
//   --format=github emits ::error workflow commands so findings surface as
//   inline annotations on the pull request.
// Exit codes: 0 clean, 1 findings, 2 usage error.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "tools/analyze/lint.h"

namespace {

// GitHub workflow-command escaping. Message data escapes %, CR, LF;
// property values (file=..., title=...) additionally escape ':' and ','.
std::string GithubEscape(const std::string& s, bool property) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':':
        out += property ? "%3A" : ":";
        break;
      case ',':
        out += property ? "%2C" : ",";
        break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  airfair::analyze::LintOptions options;
  bool json = false;
  bool github = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--format=github") {
      github = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : airfair::analyze::AllRules()) {
        std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--root needs a directory\n");
        return 2;
      }
      options.repo_root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: airfair_lint [--root DIR] [--json] [--format=github] [--list-rules] "
          "[paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) {
    options.roots = {"src", "bench", "tests", "tools"};
  }

  const auto start = std::chrono::steady_clock::now();
  const airfair::analyze::LintResult result = airfair::analyze::RunLint(options);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  if (json) {
    std::printf("%s\n", airfair::analyze::ResultToJson(result).c_str());
  } else if (github) {
    // ::error commands render as inline annotations on the PR diff. The
    // human-readable line follows on stderr so raw logs stay greppable.
    for (const auto& finding : result.findings) {
      std::printf("::error file=%s,line=%d,title=airfair-lint %s::%s\n",
                  GithubEscape(finding.file, /*property=*/true).c_str(),
                  finding.line > 0 ? finding.line : 1,
                  GithubEscape(finding.rule, /*property=*/true).c_str(),
                  GithubEscape(finding.message, /*property=*/false).c_str());
    }
    std::fprintf(stderr, "airfair_lint: %zu finding(s) in %d file(s) (%.0f ms)\n",
                 result.findings.size(), result.files_scanned, wall_ms);
  } else {
    for (const auto& finding : result.findings) {
      std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line, finding.rule.c_str(),
                  finding.message.c_str());
    }
    std::fprintf(stderr, "airfair_lint: %zu finding(s) in %d file(s) (%.0f ms)\n",
                 result.findings.size(), result.files_scanned, wall_ms);
  }
  return result.findings.empty() ? 0 : 1;
}

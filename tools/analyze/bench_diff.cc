#include "tools/analyze/bench_diff.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace airfair {
namespace analyze {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (null/bool/number/string/array/
// object). Just enough for bench records; numbers become double.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out)) {
      *error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u':
            // Keep it simple: skip the four hex digits, substitute '?'.
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            pos_ += 4;
            *out += '?';
            break;
          default: *out += esc;
        }
        continue;
      }
      *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object[std::move(key)] = std::move(value);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

double NumberOr(const JsonValue& record, const std::string& key, double fallback) {
  const JsonValue* value = record.Get(key);
  return value != nullptr && value->type == JsonValue::Type::kNumber ? value->number : fallback;
}

// One bench_util.h JSONL record -> normalised metrics.
void AddPerfRecord(const JsonValue& record, BenchRecords* records) {
  const JsonValue* name = record.Get("bench");
  if (name == nullptr || name->type != JsonValue::Type::kString) return;
  MetricMap metrics;
  const double events = NumberOr(record, "events_per_wall_sec", -1.0);
  if (events >= 0) metrics["events_per_wall_sec"] = events;
  const double ratio = NumberOr(record, "sim_wall_ratio", -1.0);
  if (ratio >= 0) metrics["sim_wall_ratio"] = ratio;
  const double pooled = NumberOr(record, "packets_pooled", -1.0);
  const double heap = NumberOr(record, "packets_heap", -1.0);
  if (pooled >= 0 && heap >= 0 && pooled + heap > 0) {
    metrics["pooled_frac"] = pooled / (pooled + heap);
  }
  if (!metrics.empty()) (*records)[name->str] = std::move(metrics);  // Last record wins.
}

// google-benchmark "benchmarks" array entry -> normalised metrics.
void AddGbenchRecord(const JsonValue& record, BenchRecords* records) {
  const JsonValue* name = record.Get("name");
  if (name == nullptr || name->type != JsonValue::Type::kString) return;
  if (const JsonValue* run_type = record.Get("run_type");
      run_type != nullptr && run_type->str != "iteration") {
    return;  // Skip aggregate rows (mean/median/stddev).
  }
  MetricMap metrics;
  const double real_time = NumberOr(record, "real_time", -1.0);
  if (real_time >= 0) metrics["real_time"] = real_time;
  const double items = NumberOr(record, "items_per_second", -1.0);
  if (items >= 0) metrics["events_per_wall_sec"] = items;
  if (!metrics.empty()) (*records)[name->str] = std::move(metrics);
}

}  // namespace

bool ParseBenchRecords(const std::string& text, BenchRecords* records, std::string* error) {
  // Auto-detect: a whole-text parse that yields an object with a
  // "benchmarks" array is google-benchmark output; otherwise treat the text
  // as JSONL, one record per non-empty line.
  {
    JsonValue root;
    std::string parse_error;
    if (JsonParser(text).Parse(&root, &parse_error) &&
        root.type == JsonValue::Type::kObject) {
      const JsonValue* benchmarks = root.Get("benchmarks");
      if (benchmarks != nullptr && benchmarks->type == JsonValue::Type::kArray) {
        for (const JsonValue& entry : benchmarks->array) {
          AddGbenchRecord(entry, records);
        }
        return true;
      }
      // A single JSONL-style record on one line parses as an object too.
      AddPerfRecord(root, records);
      return true;
    }
  }
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  bool any = false;
  while (std::getline(lines, line)) {
    ++line_no;
    bool blank = true;
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    JsonValue record;
    std::string parse_error;
    if (!JsonParser(line).Parse(&record, &parse_error)) {
      *error = "line " + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    AddPerfRecord(record, records);
    any = true;
  }
  if (!any) {
    *error = "no bench records found";
    return false;
  }
  return true;
}

bool LoadBenchFile(const std::string& path, BenchRecords* records, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!ParseBenchRecords(buffer.str(), records, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string DiffEntry::ToString() const {
  std::ostringstream out;
  out << bench << " " << metric << ": " << baseline << " -> " << candidate << " ("
      << (change >= 0 ? "+" : "") << change * 100.0 << "%"
      << (regression ? ", REGRESSION" : "") << ")";
  return out.str();
}

DiffResult DiffBenchRecords(const BenchRecords& baseline, const BenchRecords& candidate,
                            const DiffOptions& options) {
  DiffResult result;
  for (const auto& [name, base_metrics] : baseline) {
    const auto cand_it = candidate.find(name);
    if (cand_it == candidate.end()) {
      result.missing.push_back(name);
      continue;
    }
    for (const auto& [metric, base_value] : base_metrics) {
      const auto metric_it = cand_it->second.find(metric);
      if (metric_it == cand_it->second.end()) continue;
      const double cand_value = metric_it->second;
      DiffEntry entry;
      entry.bench = name;
      entry.metric = metric;
      entry.baseline = base_value;
      entry.candidate = cand_value;
      if (metric == "pooled_frac") {
        entry.change = cand_value - base_value;  // Absolute band.
        entry.regression = entry.change < -options.pool_tolerance;
      } else if (metric == "real_time") {
        entry.change = base_value > 0 ? (cand_value - base_value) / base_value : 0.0;
        entry.regression = entry.change > options.time_tolerance;  // Lower is better.
      } else {
        const double tolerance = metric == "sim_wall_ratio" ? options.ratio_tolerance
                                                            : options.events_tolerance;
        entry.change = base_value > 0 ? (cand_value - base_value) / base_value : 0.0;
        entry.regression = entry.change < -tolerance;  // Higher is better.
      }
      if (entry.regression) ++result.regressions;
      result.entries.push_back(std::move(entry));
    }
  }
  result.ok = result.regressions == 0 && (!options.require_all || result.missing.empty());
  return result;
}

}  // namespace analyze
}  // namespace airfair

#include "tools/analyze/bench_diff.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/json.h"

namespace airfair {
namespace analyze {
namespace {

// One bench_util.h JSONL record -> normalised metrics.
void AddPerfRecord(const JsonValue& record, BenchRecords* records) {
  const JsonValue* name = record.Get("bench");
  if (name == nullptr || name->type != JsonValue::Type::kString) return;
  MetricMap metrics;
  const double events = NumberOr(record, "events_per_wall_sec", -1.0);
  if (events >= 0) metrics["events_per_wall_sec"] = events;
  const double ratio = NumberOr(record, "sim_wall_ratio", -1.0);
  if (ratio >= 0) metrics["sim_wall_ratio"] = ratio;
  const double pooled = NumberOr(record, "packets_pooled", -1.0);
  const double heap = NumberOr(record, "packets_heap", -1.0);
  if (pooled >= 0 && heap >= 0 && pooled + heap > 0) {
    metrics["pooled_frac"] = pooled / (pooled + heap);
  }
  if (!metrics.empty()) (*records)[name->str] = std::move(metrics);  // Last record wins.
}

// google-benchmark "benchmarks" array entry -> normalised metrics.
void AddGbenchRecord(const JsonValue& record, BenchRecords* records) {
  const JsonValue* name = record.Get("name");
  if (name == nullptr || name->type != JsonValue::Type::kString) return;
  if (const JsonValue* run_type = record.Get("run_type");
      run_type != nullptr && run_type->str != "iteration") {
    return;  // Skip aggregate rows (mean/median/stddev).
  }
  MetricMap metrics;
  const double real_time = NumberOr(record, "real_time", -1.0);
  if (real_time >= 0) metrics["real_time"] = real_time;
  const double items = NumberOr(record, "items_per_second", -1.0);
  if (items >= 0) metrics["events_per_wall_sec"] = items;
  if (!metrics.empty()) (*records)[name->str] = std::move(metrics);
}

}  // namespace

bool ParseBenchRecords(const std::string& text, BenchRecords* records, std::string* error) {
  // Auto-detect: a whole-text parse that yields an object with a
  // "benchmarks" array is google-benchmark output; otherwise treat the text
  // as JSONL, one record per non-empty line.
  {
    JsonValue root;
    std::string parse_error;
    if (ParseJson(text, &root, &parse_error) &&
        root.type == JsonValue::Type::kObject) {
      const JsonValue* benchmarks = root.Get("benchmarks");
      if (benchmarks != nullptr && benchmarks->type == JsonValue::Type::kArray) {
        for (const JsonValue& entry : benchmarks->array) {
          AddGbenchRecord(entry, records);
        }
        return true;
      }
      // A single JSONL-style record on one line parses as an object too.
      AddPerfRecord(root, records);
      return true;
    }
  }
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  bool any = false;
  while (std::getline(lines, line)) {
    ++line_no;
    bool blank = true;
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    JsonValue record;
    std::string parse_error;
    if (!ParseJson(line, &record, &parse_error)) {
      *error = "line " + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    AddPerfRecord(record, records);
    any = true;
  }
  if (!any) {
    *error = "no bench records found";
    return false;
  }
  return true;
}

bool LoadBenchFile(const std::string& path, BenchRecords* records, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!ParseBenchRecords(buffer.str(), records, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string DiffEntry::ToString() const {
  std::ostringstream out;
  out << bench << " " << metric << ": " << baseline << " -> " << candidate << " ("
      << (change >= 0 ? "+" : "") << change * 100.0 << "%"
      << (regression ? ", REGRESSION" : "") << ")";
  return out.str();
}

DiffResult DiffBenchRecords(const BenchRecords& baseline, const BenchRecords& candidate,
                            const DiffOptions& options) {
  DiffResult result;
  for (const auto& [name, base_metrics] : baseline) {
    const auto cand_it = candidate.find(name);
    if (cand_it == candidate.end()) {
      result.missing.push_back(name);
      continue;
    }
    for (const auto& [metric, base_value] : base_metrics) {
      const auto metric_it = cand_it->second.find(metric);
      if (metric_it == cand_it->second.end()) continue;
      const double cand_value = metric_it->second;
      DiffEntry entry;
      entry.bench = name;
      entry.metric = metric;
      entry.baseline = base_value;
      entry.candidate = cand_value;
      if (metric == "pooled_frac") {
        entry.change = cand_value - base_value;  // Absolute band.
        entry.regression = entry.change < -options.pool_tolerance;
      } else if (metric == "real_time") {
        entry.change = base_value > 0 ? (cand_value - base_value) / base_value : 0.0;
        entry.regression = entry.change > options.time_tolerance;  // Lower is better.
      } else {
        const double tolerance = metric == "sim_wall_ratio" ? options.ratio_tolerance
                                                            : options.events_tolerance;
        entry.change = base_value > 0 ? (cand_value - base_value) / base_value : 0.0;
        entry.regression = entry.change < -tolerance;  // Higher is better.
      }
      if (entry.regression) ++result.regressions;
      result.entries.push_back(std::move(entry));
    }
  }
  result.ok = result.regressions == 0 && (!options.require_all || result.missing.empty());
  return result;
}

}  // namespace analyze
}  // namespace airfair

// Per-function control-flow graphs: the structural layer under the lint
// engine's flow-sensitive rules.
//
// The two-pass engine (lint.h) sees stripped lines and a tree-wide symbol
// index — enough for lexical and cross-file structure, blind to *order of
// execution*. The rules added for the sharded-loop lifetime discipline
// (use-after-move, guarded-field-path, callback-lifetime) need to reason
// about paths: "is this PacketPtr used after the branch that moved it?",
// "does every path from this detached post retain a cancel token?". This
// module parses each function body out of the stripped token stream into
// basic blocks connected by control-flow edges, on which the dataflow
// framework (tools/analyze/dataflow.h) runs forward may/must analyses.
//
// What the builder understands: if/else, while, do-while, for (classic and
// range), switch with fallthrough (case blocks chain unless a break/return
// ends the previous one), break/continue to the innermost loop or switch,
// early return (edge to the synthetic exit block), plain compound blocks
// (scopes, for RAII lock tracking), and lambdas — a lambda body becomes a
// *nested* FunctionCfg under its enclosing function, and the enclosing
// statement keeps the capture list followed by a `<lambda#k>` placeholder,
// so capture-initializer moves stay visible to the enclosing analysis while
// body statements do not leak into it.
//
// Still a lexer, not a compiler, with the same contract as the symbol
// index: robust for this code base's style, kept honest by structural tests
// (tests/tools_cfg_test.cc). Known limits, by design: no goto/labels (the
// tree has none), exceptions are approximated (a catch block is an
// alternative successor of the statement before its try), preprocessor
// lines are skipped wholesale, and a lambda assigned at namespace scope is
// not extracted as a function.

#ifndef AIRFAIR_TOOLS_ANALYZE_CFG_H_
#define AIRFAIR_TOOLS_ANALYZE_CFG_H_

#include <string>
#include <vector>

namespace airfair {
namespace analyze {

// One statement as the dataflow analyses see it: the token text (single
// spaces between tokens; string/char literal contents were already blanked
// by the line stripper) plus the source line and the RAII lock context.
struct CfgStmt {
  std::string text;
  int line = 0;  // 1-based line where the statement starts.
  // RAII guard variables (MutexLock / std::lock_guard / std::unique_lock /
  // std::scoped_lock) whose lexical scope encloses this statement, named by
  // the last identifier of the first constructor argument ("mu_" for
  // `MutexLock lock(&mu_)`), in acquisition order. With RAII-only locking
  // this *is* the path-aware held set: a statement on a path where the
  // lock's scope ended, or was never entered, is simply outside the scope.
  std::vector<std::string> held_locks;
  bool is_return = false;  // `return ...;` — sole successor is the exit.
};

struct CfgBlock {
  int id = 0;
  std::vector<CfgStmt> stmts;
  std::vector<int> succs;  // Successor block ids, in creation order.
};

// A function (or lambda) body as a graph. Block 0 is the entry; `exit` is a
// synthetic empty block every return and the final fall-off edge feed.
struct FunctionCfg {
  std::string name;  // Last declarator identifier; "<lambda>" for lambdas.
  // Head text from the start of the declarator line to the body '{':
  // carries the qualified name, parameters and annotation macros
  // (AF_REQUIRES / AF_NO_THREAD_SAFETY_ANALYSIS) for the rules to inspect.
  std::string head;
  std::string captures;  // Lambda capture-list text; "" for functions.
  int line = 0;          // 1-based line of the body '{'.
  int entry = 0;
  int exit = 1;
  std::vector<CfgBlock> blocks;
  std::vector<FunctionCfg> lambdas;  // In order of appearance in the body.
};

// Extracts a CFG for every function definition in one file's stripped code
// lines (lint.h StripCodeLine output, one entry per source line). Member
// functions defined inside class bodies are included; lambdas nest inside
// their enclosing function's `lambdas`. Never throws on malformed input —
// an unparseable body yields a truncated (but well-formed) graph.
std::vector<FunctionCfg> BuildFileCfgs(const std::vector<std::string>& code);

// Multi-line debug rendering of a CFG ("B0 -> B1 B2" plus statements),
// used by the structural tests' failure messages.
std::string CfgToString(const FunctionCfg& cfg);

}  // namespace analyze
}  // namespace airfair

#endif  // AIRFAIR_TOOLS_ANALYZE_CFG_H_

#!/usr/bin/env bash
# Lint entry point for the airfair simulator.
#
# Runs the project's own airfair_lint (always — it builds with the project,
# no LLVM needed), then clang-format (check mode) and clang-tidy over the C++
# sources when those tools are installed, degrading gracefully (skip + note,
# exit 0) when they are not, so the script is safe to call from environments
# that only carry the gcc toolchain. CI installs both LLVM tools and passes
# --require so a missing tool there is an error rather than a skip.
#
# Usage:
#   tools/lint.sh [--fix] [--require] [--changed-only] [files...]
#
#   --fix           Apply clang-format in place instead of checking.
#   --require       Fail (exit 2) if a linter binary is missing.
#   --changed-only  Restrict to files changed vs. the merge base with the
#                   default branch (falls back to HEAD~1).
#   files...        Explicit file list; overrides discovery.

set -u -o pipefail

cd "$(dirname "$0")/.."

FIX=0
REQUIRE=0
CHANGED_ONLY=0
EXPLICIT_FILES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fix) FIX=1 ;;
    --require) REQUIRE=1 ;;
    --changed-only) CHANGED_ONLY=1 ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) EXPLICIT_FILES+=("$1") ;;
  esac
  shift
done

note() { echo "lint.sh: $*" >&2; }

missing_tool() {
  local tool="$1"
  if [[ "$REQUIRE" -eq 1 ]]; then
    note "required tool '$tool' not found"
    exit 2
  fi
  note "'$tool' not found; skipping (install LLVM tools or run in CI)"
}

# ---- File discovery --------------------------------------------------------
declare -a FILES
if [[ ${#EXPLICIT_FILES[@]} -gt 0 ]]; then
  FILES=("${EXPLICIT_FILES[@]}")
elif [[ "$CHANGED_ONLY" -eq 1 ]]; then
  base="$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1 2>/dev/null || true)"
  if [[ -z "$base" ]]; then
    note "cannot determine a diff base; falling back to full tree"
    mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'bench/*.cc' 'examples/*.cpp')
  else
    mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$base" -- \
      'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'bench/*.cc' 'examples/*.cpp')
  fi
else
  mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'bench/*.cc' 'examples/*.cpp')
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  note "no files to lint"
  exit 0
fi

STATUS=0

# ---- airfair_lint (vendored, builds with the project) ----------------------
# Unlike the LLVM tools this one always runs: it needs only the project's own
# CMake build. Whole-tree by design — it finishes in milliseconds, and rules
# like core-needs-test and audit-registration are cross-file anyway.
AF_LINT=""
for d in build build-asan build-audit build-tsan; do
  if [[ -x "$d/tools/analyze/airfair_lint" ]]; then AF_LINT="$d/tools/analyze/airfair_lint"; break; fi
done
if [[ -z "$AF_LINT" ]]; then
  note "airfair_lint not built; building it (target airfair_lint)"
  cmake -B build -S . >/dev/null && cmake --build build --target airfair_lint -j >/dev/null \
    || { note "failed to build airfair_lint"; exit 2; }
  AF_LINT="build/tools/analyze/airfair_lint"
fi
if ! "$AF_LINT" --root . src bench tests tools; then
  note "airfair_lint reported findings"
  STATUS=1
else
  note "airfair_lint clean"
fi

# ---- clang-format ----------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  if [[ "$FIX" -eq 1 ]]; then
    clang-format -i "${FILES[@]}" || STATUS=1
    note "clang-format applied to ${#FILES[@]} files"
  else
    if ! clang-format --dry-run -Werror "${FILES[@]}"; then
      note "clang-format found differences (re-run with --fix)"
      STATUS=1
    else
      note "clang-format clean on ${#FILES[@]} files"
    fi
  fi
else
  missing_tool clang-format
fi

# ---- clang-tidy ------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  BUILD_DIR=""
  for d in build build-asan build-audit; do
    if [[ -f "$d/compile_commands.json" ]]; then BUILD_DIR="$d"; break; fi
  done
  if [[ -z "$BUILD_DIR" ]]; then
    note "no compile_commands.json; configuring with CMAKE_EXPORT_COMPILE_COMMANDS"
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
    BUILD_DIR=build
  fi
  # clang-tidy only accepts translation units, not headers.
  TUS=()
  for f in "${FILES[@]}"; do
    case "$f" in
      *.cc|*.cpp) TUS+=("$f") ;;
    esac
  done
  if [[ ${#TUS[@]} -gt 0 ]]; then
    if ! clang-tidy -p "$BUILD_DIR" --quiet "${TUS[@]}"; then
      note "clang-tidy reported findings"
      STATUS=1
    else
      note "clang-tidy clean on ${#TUS[@]} translation units"
    fi
  fi
else
  missing_tool clang-tidy
fi

exit "$STATUS"

// The sparse-station optimisation, hands-on.
//
// A laptop that only sends a ping now and then shares the access point with
// three stations running bulk transfers. The airtime scheduler's new-station
// list gives such "sparse" stations one priority round of scheduling —
// Section 3.2, improvement #3, evaluated in the paper's Figure 8.
//
// This example also demonstrates composing a custom scenario directly
// against the library API (Testbed + traffic endpoints) rather than using a
// canned experiment runner.
//
// Build & run:  ./build/examples/sparse_station

#include <cstdio>

#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/scenario/testbed.h"

using namespace airfair;

namespace {

double MedianSparseRtt(bool optimisation_enabled) {
  TestbedConfig config;
  config.seed = 7;
  config.scheme = QueueScheme::kAirtimeFair;
  config.stations = ThreeStationSetup();
  config.stations.push_back(FastStation("laptop"));
  config.mac_backend.scheduler.sparse_station_optimization = optimisation_enabled;
  Testbed tb(config);

  // Bulk TCP downloads to the three busy stations.
  std::vector<std::unique_ptr<TcpListener>> listeners;
  std::vector<std::unique_ptr<TcpSocket>> senders;
  for (int i = 0; i < 3; ++i) {
    listeners.push_back(std::make_unique<TcpListener>(tb.station_host(i), 5001, TcpConfig()));
    auto sender = std::make_unique<TcpSocket>(tb.server_host(), TcpConfig());
    sender->Connect(tb.station_node(i), 5001);
    sender->WriteForever();
    senders.push_back(std::move(sender));
  }

  // The laptop only gets pinged.
  PingSender::Config ping_config;
  ping_config.interval = TimeUs::FromMilliseconds(100);
  PingSender ping(tb.server_host(), tb.station_node(3), ping_config);
  ping.Start();

  tb.sim().RunFor(TimeUs::FromSeconds(3));  // Warmup.
  ping.StartMeasuring(tb.sim().now());
  tb.sim().RunFor(TimeUs::FromSeconds(15));
  return ping.rtt_ms().Median();
}

}  // namespace

int main() {
  std::printf("Sparse-station optimisation demo (airtime-fair scheduler)\n");
  std::printf("3 stations saturated with bulk TCP; a 4th only answers pings.\n\n");
  const double with_opt = MedianSparseRtt(true);
  const double without_opt = MedianSparseRtt(false);
  std::printf("  median ping RTT, optimisation ON : %6.2f ms\n", with_opt);
  std::printf("  median ping RTT, optimisation OFF: %6.2f ms\n", without_opt);
  std::printf("  reduction: %.0f%%  (paper reports 10-15%% in the 4-station testbed)\n",
              100.0 * (1.0 - with_opt / without_opt));
  return 0;
}

// VoIP over a congested WiFi hop: does the DiffServ marking still matter?
//
// Reproduces the headline of the paper's Table 2 interactively: a VoIP call
// to the slow station competes with bulk TCP downloads to every station.
// With the stock FIFO kernel, only VO-marked (802.11e voice queue) traffic
// is usable; with the paper's queue structure, best-effort marking performs
// just as well — "applications can rely on excellent real-time performance
// even when not in control of the DiffServ markings of their traffic".
//
// Build & run:  ./build/examples/voip_qos

#include <cstdio>

#include "src/scenario/experiments.h"

using namespace airfair;

int main() {
  std::printf("VoIP quality (E-model MOS, 1.0 = unusable .. 4.5 = perfect)\n");
  std::printf("Call to the slow station while every station receives bulk TCP.\n\n");
  std::printf("%-12s %-22s %-22s %s\n", "scheme", "VO-marked (802.11e)", "best-effort",
              "verdict");

  ExperimentTiming timing;
  timing.warmup = TimeUs::FromSeconds(5);
  timing.measure = TimeUs::FromSeconds(20);

  for (QueueScheme scheme : {QueueScheme::kFifo, QueueScheme::kFqCodel, QueueScheme::kFqMac,
                             QueueScheme::kAirtimeFair}) {
    const VoipResult vo =
        RunVoip(scheme, 42, /*vo_marking=*/true, TimeUs::FromMilliseconds(5), timing);
    const VoipResult be =
        RunVoip(scheme, 42, /*vo_marking=*/false, TimeUs::FromMilliseconds(5), timing);
    const char* verdict = (be.mos > 4.2)              ? "BE is already excellent"
                          : (vo.mos - be.mos > 0.5)   ? "needs the VO queue"
                                                      : "mediocre either way";
    std::printf("%-12s MOS %.2f (%4.1f Mbps)   MOS %.2f (%4.1f Mbps)   %s\n",
                SchemeName(scheme), vo.mos, vo.total_throughput_mbps, be.mos,
                be.total_throughput_mbps, verdict);
  }
  std::printf("\nWith FQ-MAC / airtime-fair queueing the marking no longer matters,\n"
              "and the VO queue's aggregation penalty disappears from the bulk traffic.\n");
  return 0;
}

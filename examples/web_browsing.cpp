// Web browsing next to a slow neighbour.
//
// Reproduces the user-visible story of the paper's Figure 11: you are on a
// fast laptop; someone on the far side of the room (slow MCS0 link) starts a
// big download. How long does a page load take under each queueing scheme?
//
// Build & run:  ./build/examples/web_browsing

#include <cstdio>

#include "src/scenario/experiments.h"

using namespace airfair;

int main() {
  std::printf("Page-load time for a fast station while a slow station bulk-downloads\n\n");
  std::printf("%-12s %-18s %-18s\n", "scheme", "small page (56 KB)", "large page (3 MB)");

  for (QueueScheme scheme : {QueueScheme::kFifo, QueueScheme::kFqCodel, QueueScheme::kFqMac,
                             QueueScheme::kAirtimeFair}) {
    const WebResult small = RunWeb(scheme, 11, WebPage::Small(), /*slow_client=*/false,
                                   TimeUs::FromSeconds(120), 3);
    const WebResult large = RunWeb(scheme, 11, WebPage::Large(), /*slow_client=*/false,
                                   TimeUs::FromSeconds(120), 3);
    std::printf("%-12s %10.3f s       %10.3f s\n", SchemeName(scheme), small.mean_plt_s,
                large.mean_plt_s);
  }
  std::printf("\nThe order-of-magnitude jump from FIFO to FQ-CoDel is the bufferbloat\n"
              "fix; the further improvement to airtime-fair FQ is the anomaly fix\n"
              "(the slow neighbour no longer owns the medium).\n");
  return 0;
}

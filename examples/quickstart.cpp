// Quickstart: the paper's headline result in ~40 lines.
//
// Runs saturating downstream UDP to two fast stations (144.4 Mbit/s) and one
// slow station (7.2 Mbit/s) under each of the four queue-management schemes
// and prints per-station airtime shares and throughput. Under FIFO, the slow
// station hogs ~80% of the airtime (the 802.11 performance anomaly); under
// the airtime-fair scheduler every station gets one third, and total
// throughput rises several-fold.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/scenario/experiments.h"
#include "src/scenario/testbed.h"

using namespace airfair;

int main() {
  std::printf("802.11 performance anomaly demo: 2 fast stations + 1 slow station, UDP down\n\n");
  std::printf("%-10s | %-28s | %-28s | %s\n", "scheme", "airtime share (f1/f2/slow)",
              "throughput Mbps (f1/f2/slow)", "total");
  std::printf("-----------+------------------------------+------------------------------+------\n");

  for (QueueScheme scheme : {QueueScheme::kFifo, QueueScheme::kFqCodel, QueueScheme::kFqMac,
                             QueueScheme::kAirtimeFair}) {
    TestbedConfig config;
    config.seed = 42;
    config.scheme = scheme;

    ExperimentTiming timing;
    timing.warmup = TimeUs::FromSeconds(2);
    timing.measure = TimeUs::FromSeconds(8);

    const StationMeasurements m = RunUdpDownload(config, timing);
    std::printf("%-10s |   %5.1f%% %5.1f%% %5.1f%%        |   %6.1f %6.1f %6.1f       | %5.1f\n",
                SchemeName(scheme), 100 * m.airtime_share[0], 100 * m.airtime_share[1],
                100 * m.airtime_share[2], m.throughput_mbps[0], m.throughput_mbps[1],
                m.throughput_mbps[2], m.total_throughput_mbps);
  }
  std::printf("\nCompare with the paper's Table 1: FIFO ~10/11/79%% airtime, airtime-fair\n"
              "~33%% each with a ~4-5x total throughput gain.\n");
  return 0;
}
